//! Progressive sampling (Algorithm 1 / §5.1 of the paper).
//!
//! Uniform Monte-Carlo integration over a query region collapses when the
//! region is large but the probability mass inside it is concentrated:
//! uniformly-drawn points almost never land in the high-mass sub-region.
//! Progressive sampling instead walks the columns in order, at each step
//! restricting the model's conditional distribution to the query range,
//! recording the in-range probability mass, and *sampling the next value
//! from that restricted conditional*. The product of the recorded masses is
//! an unbiased estimate of the query's probability (Theorem 1), and the
//! sampler naturally concentrates its paths where the density lives.
//!
//! The implementation is batched: all `S` sample paths advance through
//! column `i` with a single call to
//! [`ConditionalDensity::conditionals`], which for the neural model is one
//! network forward pass — exactly the paper's "as many forward passes as
//! columns" cost model.

use std::sync::Mutex;

use naru_query::ColumnConstraint;
use naru_tensor::rng::sample_categorical;
use naru_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::density::{ConditionalDensity, InferenceScratch};

/// Configuration of the progressive sampler.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Number of sample paths per query (the paper sweeps 50–10 000;
    /// Naru-2000 is the headline DMV configuration).
    pub num_samples: usize,
    /// RNG seed. Estimates are deterministic given the seed.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self { num_samples: 2000, seed: 0 }
    }
}

/// Outcome of one progressive-sampling estimate, with diagnostics.
#[derive(Debug, Clone)]
pub struct SampleEstimate {
    /// The estimated probability (selectivity) of the query region.
    pub selectivity: f64,
    /// Number of sample paths whose weight collapsed to zero (they hit a
    /// conditional with no mass inside the query range).
    pub dead_paths: usize,
    /// Number of columns actually walked. Trailing wildcards are skipped,
    /// and the optimized walk stops as soon as every path is dead — so when
    /// `dead_paths` equals the path count this may be smaller than the
    /// value [`ProgressiveSampler::estimate_detailed_reference`] reports
    /// (the reference keeps walking the remaining constrained columns).
    pub columns_walked: usize,
}

/// Reusable buffers for one progressive-sampling walk: after the first
/// estimate at a given path count, repeated estimates make no heap
/// allocations. [`ProgressiveSampler`] keeps one behind a `Mutex`;
/// the Engine/Session API gives every session its own (no locking).
#[derive(Debug, Default)]
pub(crate) struct SamplerScratch {
    /// Density-side scratch (activation buffers, incremental encodings).
    infer: InferenceScratch,
    /// Flat `live x n` row-major tuple buffer (compacted in place).
    tuples: Vec<u32>,
    /// Per-live-path accumulated weights, compacted alongside `tuples`.
    weights: Vec<f64>,
    /// Conditional distributions of the current column, one row per path.
    probs: Matrix,
    /// Ids allowed by the current column's constraint, precomputed once per
    /// column instead of calling `constraint.matches` per path x id.
    allowed: Vec<u32>,
    /// Surviving path indices of the current column (compaction map).
    keep: Vec<u32>,
}

/// Progressive sampler over any [`ConditionalDensity`].
///
/// The sampler owns its scratch buffers (behind a `Mutex`, so `estimate`
/// keeps its `&self` signature and the sampler stays `Sync`); a sampler
/// instance reused across queries runs allocation-free at steady state.
/// The lock is uncontended in single-threaded use; concurrent serving
/// should give each worker its own sampler rather than share one, or
/// estimates will serialize on the scratch.
pub struct ProgressiveSampler {
    config: SamplerConfig,
    scratch: Mutex<SamplerScratch>,
}

impl ProgressiveSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: SamplerConfig) -> Self {
        Self { config, scratch: Mutex::new(SamplerScratch::default()) }
    }

    /// Number of sample paths used per estimate.
    pub fn num_samples(&self) -> usize {
        self.config.num_samples
    }

    /// Estimates the probability of the region described by one
    /// [`ColumnConstraint`] per column (wildcards = `Any`).
    ///
    /// Columns after the last constrained one contribute a factor of 1 and
    /// are skipped. Returns the estimate together with diagnostics.
    ///
    /// The walk keeps all live paths in one flat `live x n` buffer, asks the
    /// density for conditionals through the buffer-reusing
    /// [`ConditionalDensity::conditionals_into`], and *compacts* dead paths
    /// out of the batch after every column — later forward passes shrink
    /// with the live-path count, and the estimate returns early when every
    /// path dies. Estimates remain deterministic given the seed.
    pub fn estimate_detailed<D: ConditionalDensity + ?Sized>(
        &self,
        density: &D,
        constraints: &[ColumnConstraint],
    ) -> SampleEstimate {
        let scratch = &mut *self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        // The standalone sampler always walks in exact precision; relaxed
        // mode is selected at the Session layer, which also owns the
        // Provenance tagging that keeps relaxed answers distinguishable.
        progressive_walk(density, constraints, self.config.num_samples, self.config.seed, scratch, false)
    }
}

/// The progressive-sampling walk itself, operating on caller-provided
/// scratch — the shared engine behind both [`ProgressiveSampler`] (which
/// guards one scratch with a `Mutex` to stay `&self`/`Sync`) and the
/// lock-free per-thread `Session` of the Engine/Session API.
// lint: allow_fn(index) - walk state is sized to num_columns and the domain widths at entry; column and sample indices stay in bounds by construction
pub(crate) fn progressive_walk<D: ConditionalDensity + ?Sized>(
    density: &D,
    constraints: &[ColumnConstraint],
    num_samples: usize,
    seed: u64,
    scratch: &mut SamplerScratch,
    relaxed: bool,
) -> SampleEstimate {
    let n = density.num_columns();
    // lint: allow(panic) - documented walk contract: one constraint per column, checked at compile time by callers
    assert_eq!(constraints.len(), n, "one constraint per column required");
    let domains = density.domain_sizes();
    let s = num_samples.max(1);
    let mut rng = StdRng::seed_from_u64(seed);

    // Early exits: a contradictory constraint has zero probability.
    if constraints.iter().enumerate().any(|(i, c)| c.count(domains[i]) == 0) {
        return SampleEstimate { selectivity: 0.0, dead_paths: s, columns_walked: 0 };
    }
    // The last column that actually restricts anything.
    let last_filtered = constraints.iter().rposition(|c| !matches!(c, ColumnConstraint::Any));
    let Some(last_filtered) = last_filtered else {
        // No filters at all: the whole table qualifies.
        return SampleEstimate { selectivity: 1.0, dead_paths: 0, columns_walked: 0 };
    };

    scratch.infer.reset();
    scratch.infer.relaxed = relaxed;
    scratch.tuples.clear();
    scratch.tuples.resize(s * n, 0);
    scratch.weights.clear();
    scratch.weights.resize(s, 1.0);
    let mut live = s;

    for col in 0..=last_filtered {
        let constraint = &constraints[col];
        let domain = domains[col];
        let is_any = matches!(constraint, ColumnConstraint::Any);
        // Materialize the allowed ids once per column; the per-path loop
        // then only touches in-range probabilities.
        scratch.allowed.clear();
        if !is_any {
            for id in 0..domain as u32 {
                if constraint.matches(id) {
                    scratch.allowed.push(id);
                }
            }
        }

        density.conditionals_into(&scratch.tuples[..live * n], n, col, &mut scratch.probs, &mut scratch.infer);
        debug_assert_eq!(scratch.probs.shape(), (live, domain));

        scratch.keep.clear();
        let mut write = 0usize;
        for path in 0..live {
            let row = scratch.probs.row(path);
            let sampled = if is_any {
                // Unfiltered column inside the prefix: mass is 1, but we
                // still have to sample a value for later conditionals.
                sample_categorical(&mut rng, row).map(|id| id as u32)
            } else {
                // Restrict to the query range, record the in-range mass,
                // and sample from the restricted conditional.
                let mut mass = 0.0f64;
                for &id in &scratch.allowed {
                    mass += row[id as usize].max(0.0) as f64;
                }
                // The finiteness check mirrors sample_categorical's
                // guard in the reference path: a non-finite conditional
                // kills the path rather than poisoning the estimate.
                if !mass.is_finite() || mass <= 0.0 {
                    None
                } else {
                    scratch.weights[path] *= mass;
                    sample_allowed(&mut rng, row, &scratch.allowed, mass)
                }
            };
            match sampled {
                Some(id) => {
                    scratch.tuples[path * n + col] = id;
                    if write != path {
                        scratch.tuples.copy_within(path * n..(path + 1) * n, write * n);
                        scratch.weights[write] = scratch.weights[path];
                    }
                    scratch.keep.push(path as u32);
                    write += 1;
                }
                None => {
                    // Dead path: dropped from the batch by compaction.
                }
            }
        }

        if write < live {
            live = write;
            if live == 0 {
                return SampleEstimate { selectivity: 0.0, dead_paths: s, columns_walked: col + 1 };
            }
            scratch.infer.compact_rows(&scratch.keep);
        }
    }

    let selectivity = (scratch.weights[..live].iter().sum::<f64>() / s as f64).clamp(0.0, 1.0);
    SampleEstimate { selectivity, dead_paths: s - live, columns_walked: last_filtered + 1 }
}

/// A checkpoint of the walk's full per-path state after one column:
/// enough to resume the walk at the next column bit-for-bit.
#[derive(Debug)]
struct PrefixSnapshot {
    /// The live paths' tuples, exactly `live * n` ids.
    tuples: Vec<u32>,
    /// The live paths' accumulated weights, exactly `live` entries.
    weights: Vec<f64>,
    /// Number of live paths at this point of the walk.
    live: usize,
    /// The RNG state after sampling this column (cloneable by design).
    rng: StdRng,
}

/// Memoized per-column state of the most recent walk, so a following walk
/// whose compiled constraints share a column prefix can resume after the
/// shared columns instead of re-running their forward passes.
///
/// Because the sampler walks columns in order and its state after column
/// `i` depends only on the seed, the path count, and the constraints of
/// columns `0..=i`, restoring a snapshot reproduces the fresh walk
/// bit-for-bit: the restored RNG continues the identical stream and the
/// density re-encodes the restored tuples to identical inputs. The memo is
/// invalidated whenever the seed or path count changes.
#[derive(Debug, Default)]
pub(crate) struct PrefixMemo {
    valid: bool,
    num_samples: usize,
    seed: u64,
    /// Precision mode of the memoized walk: exact and relaxed walks produce
    /// different per-column states, so snapshots never cross the modes.
    relaxed: bool,
    /// Compiled constraints of the memoized walk (one per column).
    constraints: Vec<ColumnConstraint>,
    /// `snaps[i]` is the state after walking column `i`; on a fully-dead
    /// walk the dying column has no snapshot.
    snaps: Vec<PrefixSnapshot>,
    /// Column at which the memoized walk lost every path, if it did.
    dead_col: Option<usize>,
}

impl PrefixMemo {
    /// Drops all memoized state.
    pub(crate) fn clear(&mut self) {
        self.valid = false;
        self.snaps.clear();
        self.constraints.clear();
        self.dead_col = None;
    }
}

/// [`progressive_walk`] with prefix memoization: identical results for any
/// single call, but consecutive calls whose constraint vectors share a
/// leading column prefix (same seed, same path count) skip the shared
/// columns' forward passes by resuming from the memoized state. The batch
/// path sorts its queries so shared prefixes are adjacent, which turns
/// repeated and near-duplicate queries into O(changed columns) work.
// lint: allow_fn(index) - walk state is sized to num_columns and the domain widths at entry; column and sample indices stay in bounds by construction
pub(crate) fn progressive_walk_memo<D: ConditionalDensity + ?Sized>(
    density: &D,
    constraints: &[ColumnConstraint],
    num_samples: usize,
    seed: u64,
    scratch: &mut SamplerScratch,
    memo: &mut PrefixMemo,
    relaxed: bool,
) -> SampleEstimate {
    let n = density.num_columns();
    // lint: allow(panic) - documented walk contract: one constraint per column, checked at compile time by callers
    assert_eq!(constraints.len(), n, "one constraint per column required");
    let domains = density.domain_sizes();
    let s = num_samples.max(1);

    // Early exits, identical to the fresh walk. Neither consumes RNG state
    // or scratch, so the memo stays untouched and valid for the next query.
    if constraints.iter().enumerate().any(|(i, c)| c.count(domains[i]) == 0) {
        return SampleEstimate { selectivity: 0.0, dead_paths: s, columns_walked: 0 };
    }
    let last_filtered = constraints.iter().rposition(|c| !matches!(c, ColumnConstraint::Any));
    let Some(last_filtered) = last_filtered else {
        return SampleEstimate { selectivity: 1.0, dead_paths: 0, columns_walked: 0 };
    };

    // Longest usable shared prefix: leading columns whose constraints match
    // the memoized walk, capped by the snapshots we actually have and by
    // the columns this query walks at all.
    let mut shared = 0usize;
    if memo.valid
        && memo.num_samples == num_samples
        && memo.seed == seed
        && memo.relaxed == relaxed
        && memo.constraints.len() == n
    {
        while shared < memo.snaps.len() && shared <= last_filtered && memo.constraints[shared] == constraints[shared] {
            shared += 1;
        }
        // The memoized walk died at the column right after our shared
        // prefix, under the same constraint: this walk dies there too.
        if memo.dead_col == Some(shared)
            && shared == memo.snaps.len()
            && shared <= last_filtered
            && memo.constraints[shared] == constraints[shared]
        {
            return SampleEstimate { selectivity: 0.0, dead_paths: s, columns_walked: shared + 1 };
        }
    }

    let mut rng;
    let mut live;
    scratch.infer.reset();
    scratch.infer.relaxed = relaxed;
    if shared > 0 {
        // Resume: restore the checkpoint taken right after the last shared
        // column. The density's scratch was reset, so its first
        // conditionals call re-encodes the restored prefix wholesale.
        let snap = &memo.snaps[shared - 1];
        scratch.tuples.clear();
        scratch.tuples.extend_from_slice(&snap.tuples);
        scratch.weights.clear();
        scratch.weights.extend_from_slice(&snap.weights);
        live = snap.live;
        rng = snap.rng.clone();
    } else {
        scratch.tuples.clear();
        scratch.tuples.resize(s * n, 0);
        scratch.weights.clear();
        scratch.weights.resize(s, 1.0);
        live = s;
        rng = StdRng::seed_from_u64(seed);
    }

    // Re-key the memo to this walk: shared snapshots stay, the rest are
    // replaced as we walk.
    memo.valid = true;
    memo.num_samples = num_samples;
    memo.seed = seed;
    memo.relaxed = relaxed;
    memo.constraints.clear();
    memo.constraints.extend_from_slice(constraints);
    memo.snaps.truncate(shared);
    memo.dead_col = None;

    for col in shared..=last_filtered {
        let constraint = &constraints[col];
        let domain = domains[col];
        let is_any = matches!(constraint, ColumnConstraint::Any);
        scratch.allowed.clear();
        if !is_any {
            for id in 0..domain as u32 {
                if constraint.matches(id) {
                    scratch.allowed.push(id);
                }
            }
        }

        density.conditionals_into(&scratch.tuples[..live * n], n, col, &mut scratch.probs, &mut scratch.infer);
        debug_assert_eq!(scratch.probs.shape(), (live, domain));

        scratch.keep.clear();
        let mut write = 0usize;
        for path in 0..live {
            let row = scratch.probs.row(path);
            let sampled = if is_any {
                sample_categorical(&mut rng, row).map(|id| id as u32)
            } else {
                let mut mass = 0.0f64;
                for &id in &scratch.allowed {
                    mass += row[id as usize].max(0.0) as f64;
                }
                if !mass.is_finite() || mass <= 0.0 {
                    None
                } else {
                    scratch.weights[path] *= mass;
                    sample_allowed(&mut rng, row, &scratch.allowed, mass)
                }
            };
            if let Some(id) = sampled {
                scratch.tuples[path * n + col] = id;
                if write != path {
                    scratch.tuples.copy_within(path * n..(path + 1) * n, write * n);
                    scratch.weights[write] = scratch.weights[path];
                }
                scratch.keep.push(path as u32);
                write += 1;
            }
        }

        if write < live {
            live = write;
            if live == 0 {
                memo.dead_col = Some(col);
                return SampleEstimate { selectivity: 0.0, dead_paths: s, columns_walked: col + 1 };
            }
            scratch.infer.compact_rows(&scratch.keep);
        }

        memo.snaps.push(PrefixSnapshot {
            tuples: scratch.tuples[..live * n].to_vec(),
            weights: scratch.weights[..live].to_vec(),
            live,
            rng: rng.clone(),
        });
    }

    let selectivity = (scratch.weights[..live].iter().sum::<f64>() / s as f64).clamp(0.0, 1.0);
    SampleEstimate { selectivity, dead_paths: s - live, columns_walked: last_filtered + 1 }
}

impl ProgressiveSampler {
    /// The pre-optimization implementation of progressive sampling, kept
    /// verbatim as the baseline: per-column allocating `conditionals`
    /// (re-encoding the batch from scratch each step), a fresh
    /// masked-probability vector per path x column, no compaction. Used by
    /// the `bench_infer` harness to measure the speedup of the hot path and
    /// by tests as a semantic reference for [`estimate_detailed`].
    ///
    /// [`estimate_detailed`]: ProgressiveSampler::estimate_detailed
    // lint: allow_fn(index) - walk state is sized to num_columns and the domain widths at entry; column and sample indices stay in bounds by construction
    pub fn estimate_detailed_reference<D: ConditionalDensity + ?Sized>(
        &self,
        density: &D,
        constraints: &[ColumnConstraint],
    ) -> SampleEstimate {
        let n = density.num_columns();
        // lint: allow(panic) - documented walk contract: one constraint per column, checked at compile time by callers
        assert_eq!(constraints.len(), n, "one constraint per column required");
        let domains = density.domain_sizes();
        let s = self.config.num_samples.max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        if constraints.iter().enumerate().any(|(i, c)| c.count(domains[i]) == 0) {
            return SampleEstimate { selectivity: 0.0, dead_paths: s, columns_walked: 0 };
        }
        let last_filtered = constraints.iter().rposition(|c| !matches!(c, ColumnConstraint::Any));
        let Some(last_filtered) = last_filtered else {
            return SampleEstimate { selectivity: 1.0, dead_paths: 0, columns_walked: 0 };
        };

        let mut tuples: Vec<Vec<u32>> = vec![vec![0u32; n]; s];
        let mut weights: Vec<f64> = vec![1.0; s];

        for col in 0..=last_filtered {
            let constraint = &constraints[col];
            let probs = density.conditionals(&tuples, col);
            let domain = domains[col];
            for path in 0..s {
                if weights[path] == 0.0 {
                    continue;
                }
                let row = probs.row(path);
                match constraint {
                    ColumnConstraint::Any => match sample_categorical(&mut rng, row) {
                        Some(id) => tuples[path][col] = id as u32,
                        None => weights[path] = 0.0,
                    },
                    _ => {
                        let mut masked: Vec<f32> = vec![0.0; domain];
                        let mut mass = 0.0f64;
                        for id in 0..domain {
                            if constraint.matches(id as u32) {
                                let p = row[id].max(0.0);
                                masked[id] = p;
                                mass += p as f64;
                            }
                        }
                        if mass <= 0.0 {
                            weights[path] = 0.0;
                            continue;
                        }
                        weights[path] *= mass;
                        match sample_categorical(&mut rng, &masked) {
                            Some(id) => tuples[path][col] = id as u32,
                            None => weights[path] = 0.0,
                        }
                    }
                }
            }
        }

        let dead_paths = weights.iter().filter(|&&w| w == 0.0).count();
        let selectivity = (weights.iter().sum::<f64>() / s as f64).clamp(0.0, 1.0);
        SampleEstimate { selectivity, dead_paths, columns_walked: last_filtered + 1 }
    }

    /// Convenience wrapper returning only the selectivity.
    pub fn estimate<D: ConditionalDensity + ?Sized>(&self, density: &D, constraints: &[ColumnConstraint]) -> f64 {
        self.estimate_detailed(density, constraints).selectivity
    }
}

/// Draws an id from the restricted conditional: walks `allowed` subtracting
/// each id's (clamped) probability from a uniform draw over `mass` — the
/// same arithmetic as [`sample_categorical`] over the masked vector the old
/// implementation materialized, without building it.
// lint: allow_fn(index) - walk state is sized to num_columns and the domain widths at entry; column and sample indices stay in bounds by construction
fn sample_allowed<R: Rng + ?Sized>(rng: &mut R, row: &[f32], allowed: &[u32], mass: f64) -> Option<u32> {
    let mut target = rng.gen::<f64>() * mass;
    for &id in allowed {
        let w = row[id as usize].max(0.0) as f64;
        if w <= 0.0 {
            continue;
        }
        if target < w {
            return Some(id);
        }
        target -= w;
    }
    // Floating-point slack: return the last positive-weight allowed id.
    allowed.iter().rev().copied().find(|&id| row[id as usize] > 0.0)
}

/// The naive uniform Monte-Carlo integrator (the "first attempt" of §5.1),
/// kept as a comparison point for the ablation benchmarks: it draws points
/// uniformly from the query region and averages their joint densities,
/// scaling by the region size.
// lint: allow_fn(index) - walk state is sized to num_columns and the domain widths at entry; column and sample indices stay in bounds by construction
pub fn uniform_sampling_estimate<D: ConditionalDensity + ?Sized>(
    density: &D,
    constraints: &[ColumnConstraint],
    num_samples: usize,
    seed: u64,
) -> f64 {
    let domains = density.domain_sizes();
    let mut rng = StdRng::seed_from_u64(seed);
    // Materialize the allowed ids per column (query regions in this
    // workspace are per-column ranges, so this stays small per column).
    let allowed: Vec<Vec<u32>> = constraints.iter().enumerate().map(|(i, c)| c.materialize(domains[i])).collect();
    if allowed.iter().any(Vec::is_empty) {
        return 0.0;
    }
    let region_size: f64 = allowed.iter().map(|a| a.len() as f64).product();

    let mut tuples = Vec::with_capacity(num_samples);
    for _ in 0..num_samples {
        let tuple: Vec<u32> = allowed
            .iter()
            .map(|ids| {
                let k = rand::Rng::gen_range(&mut rng, 0..ids.len());
                ids[k]
            })
            .collect();
        tuples.push(tuple);
    }
    let ll = density.log_likelihood(&tuples);
    let mean_density: f64 = ll.iter().map(|&l| l.exp()).sum::<f64>() / num_samples as f64;
    (mean_density * region_size).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::IndependentDensity;
    use crate::oracle::OracleDensity;
    use naru_data::synthetic::correlated_pair;
    use naru_data::{Column, Table};
    use naru_query::{count_matches, Predicate, Query};

    fn constraints_of(query: &Query, n: usize) -> Vec<ColumnConstraint> {
        query.constraints(n)
    }

    #[test]
    fn exact_on_independent_density_point_query() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 64, seed: 1 });
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::eq(1, 2)]);
        let est = sampler.estimate(&d, &constraints_of(&q, 2));
        // For point queries the estimate is deterministic and exact.
        assert!((est - 0.75 * 0.7).abs() < 1e-6);
    }

    #[test]
    fn exact_on_independent_density_range_query() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 16, seed: 3 });
        let q = Query::new(vec![Predicate::ge(1, 1)]);
        let est = sampler.estimate(&d, &constraints_of(&q, 2));
        // Only the last column is filtered; the first is a wildcard. For an
        // independent density every path yields exactly 0.9.
        assert!((est - 0.9).abs() < 1e-6);
    }

    #[test]
    fn unfiltered_query_returns_one() {
        let d = IndependentDensity::uniform(&[4, 4]);
        let sampler = ProgressiveSampler::new(SamplerConfig::default());
        let est = sampler.estimate_detailed(&d, &[ColumnConstraint::Any, ColumnConstraint::Any]);
        assert_eq!(est.selectivity, 1.0);
        assert_eq!(est.columns_walked, 0);
    }

    #[test]
    fn contradictory_query_returns_zero() {
        let d = IndependentDensity::uniform(&[4, 4]);
        let sampler = ProgressiveSampler::new(SamplerConfig::default());
        let c = vec![ColumnConstraint::Empty, ColumnConstraint::Any];
        assert_eq!(sampler.estimate(&d, &c), 0.0);
    }

    #[test]
    fn oracle_plus_sampler_matches_ground_truth_on_correlated_data() {
        // With an exact (oracle) model, progressive sampling should estimate
        // correlated range queries accurately — this is the §6.7 setup.
        let t = correlated_pair(2000, 8, 0.9, 7);
        let oracle = OracleDensity::new(&t);
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 500, seed: 5 });
        let queries = vec![
            Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]),
            Query::new(vec![Predicate::le(0, 2), Predicate::le(1, 2)]),
            Query::new(vec![Predicate::ge(0, 4), Predicate::le(1, 3)]),
        ];
        for q in queries {
            let truth = count_matches(&t, &q) as f64 / t.num_rows() as f64;
            let est = sampler.estimate(&oracle, &q.constraints(2));
            let denom = truth.max(1.0 / t.num_rows() as f64);
            let qerr = (est.max(1.0 / t.num_rows() as f64) / denom).max(denom / est.max(1.0 / t.num_rows() as f64));
            assert!(qerr < 1.6, "q-error {qerr} too high (est {est}, truth {truth})");
        }
    }

    #[test]
    fn progressive_beats_uniform_sampling_on_skewed_data() {
        // The §5.1 failure mode: skewed + correlated columns, range query
        // over half of each domain. Uniform sampling with few samples keeps
        // missing the mass; progressive sampling nails it.
        let domain = 64;
        let rows: Vec<u32> =
            (0..4000).map(|i| if i % 100 < 99 { (i % 3) as u32 } else { (i % domain) as u32 }).collect();
        let col_a = Column::from_ids("a", rows.clone(), domain as usize);
        let col_b = Column::from_ids("b", rows, domain as usize);
        let t = Table::new("skew", vec![col_a, col_b]);
        let oracle = OracleDensity::new(&t);
        let q = Query::new(vec![Predicate::le(0, (domain / 2) as u32), Predicate::le(1, (domain / 2) as u32)]);
        let truth = count_matches(&t, &q) as f64 / t.num_rows() as f64;

        let progressive =
            ProgressiveSampler::new(SamplerConfig { num_samples: 200, seed: 2 }).estimate(&oracle, &q.constraints(2));
        let uniform = uniform_sampling_estimate(&oracle, &q.constraints(2), 200, 2);

        let qerr = |est: f64| {
            let est = est.max(1e-9);
            (est / truth).max(truth / est)
        };
        assert!(
            qerr(progressive) < qerr(uniform) + 1e-9,
            "progressive {progressive} vs uniform {uniform} (truth {truth})"
        );
        assert!(qerr(progressive) < 1.2);
    }

    #[test]
    fn optimized_sampler_matches_reference_exactly_on_oracle() {
        // With an oracle density (whose conditionals are identical through
        // both paths) the compacted zero-allocation walk consumes the RNG in
        // the same order as the reference, so estimates agree exactly.
        let t = correlated_pair(1500, 8, 0.85, 11);
        let oracle = OracleDensity::new(&t);
        let queries = [
            Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 2)]),
            Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]),
            Query::new(vec![Predicate::ge(0, 6), Predicate::le(1, 1)]),
            Query::new(vec![Predicate::le(1, 4)]),
        ];
        for (i, q) in queries.iter().enumerate() {
            let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 300, seed: 40 + i as u64 });
            let fast = sampler.estimate_detailed(&oracle, &q.constraints(2));
            let slow = sampler.estimate_detailed_reference(&oracle, &q.constraints(2));
            assert_eq!(fast.selectivity, slow.selectivity, "query {i}");
            assert_eq!(fast.dead_paths, slow.dead_paths, "query {i}");
            assert_eq!(fast.columns_walked, slow.columns_walked, "query {i}");
        }
    }

    #[test]
    fn scratch_reuse_across_queries_is_clean() {
        // Re-using one sampler (and thus one scratch) across queries of
        // different shapes must not leak state between estimates.
        let t = correlated_pair(800, 6, 0.9, 13);
        let oracle = OracleDensity::new(&t);
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 150, seed: 3 });
        let q1 = Query::new(vec![Predicate::le(0, 2), Predicate::le(1, 2)]);
        let q2 = Query::new(vec![Predicate::ge(1, 4)]);
        let first_q1 = sampler.estimate(&oracle, &q1.constraints(2));
        let first_q2 = sampler.estimate(&oracle, &q2.constraints(2));
        // Interleave and repeat: results must be stable.
        assert_eq!(sampler.estimate(&oracle, &q1.constraints(2)), first_q1);
        assert_eq!(sampler.estimate(&oracle, &q2.constraints(2)), first_q2);
        assert_eq!(sampler.estimate(&oracle, &q1.constraints(2)), first_q1);
    }

    #[test]
    fn estimates_are_deterministic_given_seed() {
        let t = correlated_pair(500, 6, 0.8, 1);
        let oracle = OracleDensity::new(&t);
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 1)]);
        let a =
            ProgressiveSampler::new(SamplerConfig { num_samples: 100, seed: 9 }).estimate(&oracle, &q.constraints(2));
        let b =
            ProgressiveSampler::new(SamplerConfig { num_samples: 100, seed: 9 }).estimate(&oracle, &q.constraints(2));
        assert_eq!(a, b);
    }

    #[test]
    fn variance_shrinks_with_more_samples() {
        // Estimate the same query with different seeds; the spread with
        // 1000 samples must be no larger than with 20 samples.
        let t = correlated_pair(3000, 10, 0.85, 3);
        let oracle = OracleDensity::new(&t);
        let q = Query::new(vec![Predicate::le(0, 5), Predicate::ge(1, 2)]);
        let spread = |num_samples: usize| {
            let ests: Vec<f64> = (0..6)
                .map(|seed| {
                    ProgressiveSampler::new(SamplerConfig { num_samples, seed }).estimate(&oracle, &q.constraints(2))
                })
                .collect();
            let max = ests.iter().cloned().fold(f64::MIN, f64::max);
            let min = ests.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(spread(1000) <= spread(20) + 1e-9);
    }
}
