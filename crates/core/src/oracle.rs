//! Oracle and noisy-oracle densities (§6.7 of the paper).
//!
//! The Conviva-B microbenchmarks isolate the two error sources of Naru —
//! model imprecision and progressive-sampling variance — by running the
//! sampler against an *emulated oracle model*: the exact conditional
//! distributions obtained by scanning the data at every step. The paper
//! then dials in an artificial entropy gap (Figure 7) to see how much model
//! imprecision the sampler tolerates; [`NoisyOracle`] reproduces that by
//! mixing each exact conditional with a uniform distribution.

use std::collections::HashMap;
use std::sync::Mutex;

use naru_data::Table;
use naru_tensor::Matrix;

use crate::density::ConditionalDensity;

/// Per-prefix scan state retained by the oracle's memo: the rows matching
/// the prefix and the conditional distribution of the next column given it.
#[derive(Debug, Clone)]
struct PrefixState {
    /// Indices of the rows matching the prefix.
    rows: Vec<u32>,
    /// `P(X_col | prefix)`, smoothed and normalized.
    conditional: Vec<f32>,
}

/// Upper bound on the memo's payload size (row-id and conditional vectors,
/// approximate bytes, across all columns). Progressive sampling keeps
/// revisiting the same prefixes (paths concentrate where the mass lives),
/// so the working set is small; the cap only guards pathological workloads
/// — wide domains, highly diverse prefixes — from unbounded growth. Once
/// hit, further prefixes are computed without being stored.
const PREFIX_CACHE_MAX_BYTES: usize = 256 << 20;

/// The exact chain-rule conditionals of a table, computed by scanning.
///
/// Each conditional query filters the rows matching the prefix and
/// histograms the target column. The scan state is *memoized per prefix*:
/// the first request for a prefix refines its parent prefix's row set (one
/// filter pass over the parent's matches, not the whole table) and caches
/// both the surviving rows and the resulting conditional; every later
/// request for the same prefix — and progressive sampling issues thousands,
/// since many sample paths walk the same high-mass prefixes — is a hash
/// lookup. The memo sits behind a `Mutex` so the oracle stays shareable
/// (`Sync`) across engine sessions; results are identical to a fresh scan.
pub struct OracleDensity {
    /// Column-major copy of the table's ids.
    columns: Vec<Vec<u32>>,
    domain_sizes: Vec<usize>,
    /// Laplace-style smoothing mass added to every conditional cell so the
    /// oracle never assigns exactly zero probability to an id (keeps
    /// log-likelihoods finite). Zero disables smoothing.
    smoothing: f64,
    /// `cache[col]` maps a prefix `tuple[..col]` to its scan state.
    cache: Mutex<PrefixCache>,
}

/// The memo itself plus its approximate payload size in bytes, tracked so
/// the cap bounds memory rather than entry count (one entry on a
/// large-domain column can weigh megabytes).
#[derive(Debug, Default)]
struct PrefixCache {
    levels: Vec<HashMap<Vec<u32>, PrefixState>>,
    bytes: usize,
}

impl OracleDensity {
    /// Builds the oracle from a table.
    pub fn new(table: &Table) -> Self {
        Self::with_smoothing(table, 0.0)
    }

    /// Builds the oracle with additive smoothing `alpha` per conditional cell.
    pub fn with_smoothing(table: &Table, alpha: f64) -> Self {
        let columns: Vec<Vec<u32>> = table.columns().iter().map(|c| c.ids().to_vec()).collect();
        let domain_sizes: Vec<usize> = table.columns().iter().map(|c| c.domain_size()).collect();
        let cache = Mutex::new(PrefixCache { levels: vec![HashMap::new(); domain_sizes.len()], bytes: 0 });
        Self { columns, domain_sizes, smoothing: alpha, cache }
    }

    // lint: allow_fn(index) - prefix and tuple indices are bounded by the schema width the oracle was built from
    fn num_rows(&self) -> usize {
        self.columns[0].len()
    }

    /// Number of memoized prefixes across all columns (diagnostics).
    pub fn cached_prefixes(&self) -> usize {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).levels.iter().map(HashMap::len).sum()
    }

    /// Rows matching `prefix` by a full scan (the uncached fallback and the
    /// root of the incremental refinement).
    // lint: allow_fn(index) - prefix and tuple indices are bounded by the schema width the oracle was built from
    fn scan_matching_rows(&self, prefix: &[u32]) -> Vec<u32> {
        let mut rows: Vec<u32> = (0..self.num_rows() as u32).collect();
        for (&want, ids) in prefix.iter().zip(&self.columns) {
            rows.retain(|&r| ids[r as usize] == want);
            if rows.is_empty() {
                break;
            }
        }
        rows
    }

    /// The conditional of column `col` over the given matching rows.
    // lint: allow_fn(index) - prefix and tuple indices are bounded by the schema width the oracle was built from
    fn conditional_over(&self, rows: &[u32], col: usize) -> Vec<f32> {
        let domain = self.domain_sizes[col];
        let mut counts = vec![self.smoothing; domain];
        let ids = &self.columns[col];
        for &r in rows {
            counts[ids[r as usize] as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            // Prefix unseen in the data: fall back to uniform so the sampler
            // can keep going (its weight will already be ~0 for this path).
            return vec![1.0 / domain as f32; domain];
        }
        counts.iter().map(|&c| (c / total) as f32).collect()
    }

    /// Ensures `cache[col]` holds the state for `prefix` and returns a copy
    /// of work done (the caller copies the conditional out under the lock).
    // lint: allow_fn(index) - prefix and tuple indices are bounded by the schema width the oracle was built from
    fn with_prefix_state<R>(&self, cache: &mut PrefixCache, prefix: &[u32], f: impl FnOnce(&PrefixState) -> R) -> R {
        let col = prefix.len();
        if let Some(state) = cache.levels[col].get(prefix) {
            return f(state);
        }
        // Refine the parent prefix's rows (one element shorter) instead of
        // rescanning the table; the sampler walks columns in order, so the
        // parent is almost always already memoized.
        let rows = if col == 0 {
            self.scan_matching_rows(prefix)
        } else {
            let want = prefix[col - 1];
            let ids = &self.columns[col - 1];
            match cache.levels[col - 1].get(&prefix[..col - 1]) {
                Some(parent) => parent.rows.iter().copied().filter(|&r| ids[r as usize] == want).collect(),
                None => self.scan_matching_rows(prefix),
            }
        };
        let state = PrefixState { conditional: self.conditional_over(&rows, col), rows };
        let result = f(&state);
        let state_bytes = state.rows.len() * 4 + state.conditional.len() * 4 + prefix.len() * 4;
        if cache.bytes + state_bytes <= PREFIX_CACHE_MAX_BYTES {
            cache.bytes += state_bytes;
            cache.levels[col].insert(prefix.to_vec(), state);
        }
        result
    }
}

impl ConditionalDensity for OracleDensity {
    fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    // lint: allow_fn(index) - prefix and tuple indices are bounded by the schema width the oracle was built from
    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        let domain = self.domain_sizes[col];
        let mut out = Matrix::zeros(tuples.len(), domain);
        let cache = &mut *self.cache.lock().unwrap_or_else(|e| e.into_inner());
        for (r, tuple) in tuples.iter().enumerate() {
            self.with_prefix_state(cache, &tuple[..col], |state| {
                out.row_mut(r).copy_from_slice(&state.conditional);
            });
        }
        out
    }
}

/// An oracle whose conditionals are mixed with the uniform distribution:
/// `p'(x) = (1 − ε)·p(x) + ε / |A_i|`.
///
/// Increasing `ε` increases the entropy gap of the resulting model in a
/// controlled way, which is how Figure 7's x-axis is produced. Use
/// [`NoisyOracle::calibrate_epsilon`] to find the `ε` matching a target gap
/// for a particular table.
pub struct NoisyOracle<D: ConditionalDensity> {
    inner: D,
    epsilon: f64,
}

impl<D: ConditionalDensity> NoisyOracle<D> {
    /// Wraps `inner`, mixing each conditional with uniform weight `epsilon`.
    pub fn new(inner: D, epsilon: f64) -> Self {
        // lint: allow(panic) - documented constructor contract: epsilon outside [0,1] is a caller bug
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        Self { inner, epsilon }
    }

    /// The mixing weight.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Consumes the wrapper and returns the inner density.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: ConditionalDensity> ConditionalDensity for NoisyOracle<D> {
    fn num_columns(&self) -> usize {
        self.inner.num_columns()
    }

    fn domain_sizes(&self) -> &[usize] {
        self.inner.domain_sizes()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        let mut probs = self.inner.conditionals(tuples, col);
        // lint: allow(index) - trait contract: col < num_columns == domain_sizes().len()
        let domain = self.domain_sizes()[col] as f32;
        let eps = self.epsilon as f32;
        let uniform = eps / domain;
        probs.map_inplace(|p| (1.0 - eps) * p + uniform);
        probs
    }
}

/// Finds the mixing weight `ε` whose [`NoisyOracle`] over `oracle` has an
/// entropy gap (measured on `tuples`) closest to `target_gap_bits`, by
/// bisection on `ε ∈ [0, 1]`.
pub fn calibrate_epsilon(table: &Table, tuples: &[Vec<u32>], target_gap_bits: f64) -> f64 {
    if target_gap_bits <= 0.0 {
        return 0.0;
    }
    let data_entropy = table.data_entropy_bits();
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..30 {
        let mid = 0.5 * (lo + hi);
        let noisy = NoisyOracle::new(OracleDensity::new(table), mid);
        let gap = crate::density::entropy_gap_bits(&noisy, tuples, data_entropy);
        if gap < target_gap_bits {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{average_nll_bits, entropy_gap_bits};
    use naru_data::Column;

    fn table() -> Table {
        // Strong dependency: b == a; c uniform-ish.
        Table::new(
            "t",
            vec![
                Column::from_ids("a", vec![0, 0, 1, 1, 2, 2, 2, 2], 3),
                Column::from_ids("b", vec![0, 0, 1, 1, 2, 2, 2, 2], 3),
                Column::from_ids("c", vec![0, 1, 0, 1, 0, 1, 0, 1], 2),
            ],
        )
    }

    #[test]
    fn oracle_marginal_matches_counts() {
        let t = table();
        let oracle = OracleDensity::new(&t);
        let probs = oracle.conditionals(&[vec![0, 0, 0]], 0);
        assert!((probs.get(0, 0) - 0.25).abs() < 1e-6);
        assert!((probs.get(0, 2) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn oracle_conditional_is_exact() {
        let t = table();
        let oracle = OracleDensity::new(&t);
        // P(b | a=2) is a point mass on 2.
        let probs = oracle.conditionals(&[vec![2, 0, 0]], 1);
        assert!((probs.get(0, 2) - 1.0).abs() < 1e-6);
        assert!(probs.get(0, 0) < 1e-6);
    }

    #[test]
    fn oracle_unseen_prefix_falls_back_to_uniform() {
        let t = Table::new("t", vec![Column::from_ids("a", vec![0, 0], 3), Column::from_ids("b", vec![1, 1], 4)]);
        let oracle = OracleDensity::new(&t);
        let probs = oracle.conditionals(&[vec![2, 0]], 1); // a=2 never occurs
        for i in 0..4 {
            assert!((probs.get(0, i) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn oracle_has_zero_entropy_gap() {
        let t = table();
        let oracle = OracleDensity::new(&t);
        let tuples: Vec<Vec<u32>> = (0..t.num_rows()).map(|r| t.row(r)).collect();
        let gap = entropy_gap_bits(&oracle, &tuples, t.data_entropy_bits());
        assert!(gap.abs() < 1e-6, "oracle gap should be 0, got {gap}");
    }

    #[test]
    fn memoized_conditionals_match_fresh_scans() {
        // Deep prefixes, repeated and out of order: every answer must equal
        // what a fresh (cold-cache) oracle computes.
        let t = table();
        let warm = OracleDensity::new(&t);
        let probes: Vec<(Vec<u32>, usize)> = vec![
            (vec![2, 2, 0], 2),
            (vec![0, 0, 1], 1),
            (vec![2, 2, 1], 2), // shares the [2, 2] prefix with the first probe
            (vec![1, 0, 0], 0),
            (vec![2, 2, 0], 2), // cache hit
        ];
        for (tuple, col) in &probes {
            let cached = warm.conditionals(std::slice::from_ref(tuple), *col);
            let fresh = OracleDensity::new(&t).conditionals(std::slice::from_ref(tuple), *col);
            assert_eq!(cached.data(), fresh.data(), "tuple {tuple:?} col {col}");
        }
        assert!(warm.cached_prefixes() > 0);
        // Re-asking everything must not grow the cache further.
        let before = warm.cached_prefixes();
        for (tuple, col) in &probes {
            let _ = warm.conditionals(std::slice::from_ref(tuple), *col);
        }
        assert_eq!(warm.cached_prefixes(), before);
    }

    #[test]
    fn memoized_oracle_sampling_matches_expected_truth() {
        // End-to-end through the sampler: memoization must not change any
        // sampled estimate (the §6.7 oracle setup).
        use naru_data::synthetic::correlated_pair;
        use naru_query::{Predicate, Query};
        let t = correlated_pair(800, 6, 0.9, 17);
        let oracle = OracleDensity::new(&t);
        let sampler =
            crate::sampler::ProgressiveSampler::new(crate::sampler::SamplerConfig { num_samples: 200, seed: 4 });
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 1)]);
        let first = sampler.estimate(&oracle, &q.constraints(2));
        let again = sampler.estimate(&oracle, &q.constraints(2));
        assert_eq!(first, again);
        let cold = sampler.estimate(&OracleDensity::new(&t), &q.constraints(2));
        assert_eq!(first, cold);
    }

    #[test]
    fn noisy_oracle_gap_grows_with_epsilon() {
        let t = table();
        let tuples: Vec<Vec<u32>> = (0..t.num_rows()).map(|r| t.row(r)).collect();
        let h = t.data_entropy_bits();
        let gap_small = entropy_gap_bits(&NoisyOracle::new(OracleDensity::new(&t), 0.1), &tuples, h);
        let gap_large = entropy_gap_bits(&NoisyOracle::new(OracleDensity::new(&t), 0.9), &tuples, h);
        assert!(gap_small > 0.0);
        assert!(gap_large > gap_small);
    }

    #[test]
    fn noisy_oracle_rows_still_sum_to_one() {
        let t = table();
        let noisy = NoisyOracle::new(OracleDensity::new(&t), 0.5);
        for col in 0..3 {
            let probs = noisy.conditionals(&[vec![2, 2, 0]], col);
            let s: f32 = probs.row(0).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn calibration_hits_target_gap() {
        let t = table();
        let tuples: Vec<Vec<u32>> = (0..t.num_rows()).map(|r| t.row(r)).collect();
        let target = 1.0;
        let eps = calibrate_epsilon(&t, &tuples, target);
        let noisy = NoisyOracle::new(OracleDensity::new(&t), eps);
        let gap = entropy_gap_bits(&noisy, &tuples, t.data_entropy_bits());
        assert!((gap - target).abs() < 0.1, "calibrated gap {gap} vs target {target}");
        assert_eq!(calibrate_epsilon(&t, &tuples, 0.0), 0.0);
    }

    #[test]
    fn uniform_mixture_nll_interpolates_toward_uniform_model() {
        let t = table();
        let tuples: Vec<Vec<u32>> = (0..t.num_rows()).map(|r| t.row(r)).collect();
        let oracle_nll = average_nll_bits(&OracleDensity::new(&t), &tuples);
        let noisy_nll = average_nll_bits(&NoisyOracle::new(OracleDensity::new(&t), 1.0), &tuples);
        // With epsilon = 1 the model is exactly the uniform joint: NLL = log2 |joint|.
        let expected = (3f64 * 3.0 * 2.0).log2();
        assert!((noisy_nll - expected).abs() < 1e-5);
        assert!(oracle_nll < noisy_nll);
    }
}
