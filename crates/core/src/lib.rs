//! # naru-core
//!
//! The paper's primary contribution: selectivity estimation with deep
//! autoregressive likelihood models and progressive sampling.
//!
//! The crate is organized exactly along the paper's sections:
//!
//! * [`encoding`] — per-column input encodings and the small/large-domain
//!   policy (§4.2),
//! * [`model`] — the MADE-style masked autoregressive network
//!   ("architecture B") with optional embedding-reuse output decoding,
//! * [`columnwise`] — the per-column-net architecture ("architecture A",
//!   §3.2), kept for the §4.3 ablation,
//! * [`train`] — unsupervised maximum-likelihood training and fine-tuning
//!   (Eq. 2, §6.7.3),
//! * [`density`] — the [`ConditionalDensity`] abstraction plus the
//!   entropy-gap goodness-of-fit (§3.3),
//! * [`sampler`] — progressive sampling, Algorithm 1 (§5.1), plus the naive
//!   uniform sampler it replaces,
//! * [`enumeration`] — exact summation over small query regions (§5),
//! * [`oracle`] — oracle and noisy-oracle densities for the §6.7
//!   microbenchmarks,
//! * [`estimator`] — the [`NaruEstimator`] facade implementing the
//!   workspace-wide `SelectivityEstimator` trait,
//! * [`engine`] — the serving-oriented [`Engine`]/[`Session`] split: one
//!   shared immutable artifact, one lock-free mutable scratch per thread,
//! * [`stats`] — exact per-column summaries, MCV/equi-depth histograms, HLL
//!   NDV sketches, and uniform row samples shared by the tiered router and
//!   the baseline estimators,
//! * [`tiered`] — the tiered estimation pipeline: exact statistics (tier
//!   0), sketches under a q-error budget (tier 1), then the model (tier 2),
//!   with per-answer [`Provenance`](naru_query::Provenance) tags.

#![forbid(unsafe_code)]

pub mod columnwise;
pub mod density;
pub mod encoding;
pub mod engine;
pub mod enumeration;
pub mod estimator;
pub mod model;
pub mod oracle;
pub mod sampler;
pub mod stats;
pub mod tiered;
pub mod train;

pub use columnwise::{ColumnwiseConfig, ColumnwiseModel};
pub use density::{average_nll_bits, entropy_gap_bits, ConditionalDensity, IndependentDensity, InferenceScratch};
pub use encoding::{ColumnEncoding, EncodingPolicy};
pub use engine::{Engine, Precision, Session, SharedDensity};
pub use enumeration::{enumerate_exact, EnumerationResult};
pub use estimator::{NaruConfig, NaruConfigBuilder, NaruEstimator, SamplingEstimator};
pub use model::{MadeModel, ModelConfig};
pub use oracle::{calibrate_epsilon, NoisyOracle, OracleDensity};
pub use sampler::{uniform_sampling_estimate, ProgressiveSampler, SampleEstimate, SamplerConfig};
pub use stats::{ColumnHistogram, ColumnSummary, NdvSketch, StatsConfig, TableSample, TableStats};
pub use tiered::{DegradedMode, TierConfig, TieredSession};
pub use train::{
    fine_tune, table_tuples, train_model, EpochStats, TrainConfig, TrainReport, TrainWorkspace, TrainableDensity,
};
