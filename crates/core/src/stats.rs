//! Reusable per-table statistics: exact per-column summaries, MCV +
//! equi-depth histograms, HLL-style NDV sketches, and materialized uniform
//! samples.
//!
//! This module is the shared statistics layer behind two consumers:
//!
//! * the tiered estimation pipeline (`TieredSession`), whose tier 0 answers
//!   trivially-exact predicates from [`TableStats`] and whose tier 1
//!   combines per-column [`ColumnHistogram`] selectivities under an
//!   independence assumption, and
//! * the classical baselines in `naru-baselines` (`PostgresEstimator`,
//!   `Dbms1Estimator`, `SampleEstimator`), which delegate here so the
//!   serving fast path and the paper's Table 2 stand-ins share one
//!   implementation instead of two.
//!
//! Everything here is immutable after construction and cheap relative to
//! the model: building [`TableStats`] is a handful of passes over the
//! dictionary-encoded columns.

use naru_data::Table;
use naru_query::{try_count_matches, ColumnConstraint, EstimateError, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Knobs for [`TableStats::build_with`].
#[derive(Debug, Clone, Copy)]
pub struct StatsConfig {
    /// Most-common-values list length per column histogram (Postgres'
    /// `statistics_target` analogue).
    pub num_mcv: usize,
    /// Equi-depth bucket count per column histogram.
    pub num_buckets: usize,
    /// Columns whose domain is at most this large keep their exact
    /// per-value row counts, enabling tier-0 exact answers for arbitrary
    /// single-column predicates on them. Set to 0 to disable exact counts
    /// (tier 0 then only answers structurally trivial queries).
    pub exact_counts_max_domain: usize,
    /// HLL register address width in bits (`2^precision` one-byte
    /// registers per column). Clamped to `4..=16`.
    pub sketch_precision: u8,
}

impl Default for StatsConfig {
    fn default() -> Self {
        Self { num_mcv: 100, num_buckets: 100, exact_counts_max_domain: 4096, sketch_precision: 12 }
    }
}

/// Per-column statistics: MCV list + equi-depth histogram on the rest.
///
/// Promoted from the `naru-baselines` Postgres stand-in so the tiered
/// serving path and the baselines share one implementation. The estimate
/// combines the exact MCV frequencies with a uniform-within-bucket
/// assumption over the remaining values.
#[derive(Debug, Clone)]
pub struct ColumnHistogram {
    /// (id, frequency) pairs for the most common values.
    mcv: Vec<(u32, f64)>,
    /// Total frequency captured by the MCV list.
    mcv_total: f64,
    /// Equi-depth bucket boundaries (inclusive upper bounds, by id) over the
    /// non-MCV values.
    bucket_bounds: Vec<u32>,
    /// Frequency mass per bucket (uniform within the bucket).
    bucket_mass: f64,
    /// Number of distinct non-MCV values (for equality estimates).
    other_distinct: usize,
    /// Frequency mass not captured by the MCVs.
    other_total: f64,
}

impl ColumnHistogram {
    /// Builds the histogram from a column's per-id row counts.
    pub fn build(counts: &[u64], num_rows: usize, num_mcv: usize, num_buckets: usize) -> Self {
        let n = num_rows.max(1) as f64;
        // MCVs: the `num_mcv` most frequent values.
        let mut by_freq: Vec<(u32, u64)> =
            counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(id, &c)| (id as u32, c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mcv: Vec<(u32, f64)> = by_freq.iter().take(num_mcv).map(|&(id, c)| (id, c as f64 / n)).collect();
        let mcv_total: f64 = mcv.iter().map(|&(_, f)| f).sum();
        let mcv_ids: std::collections::HashSet<u32> = mcv.iter().map(|&(id, _)| id).collect();

        // Remaining values go into an equi-depth histogram over ids.
        let mut rest: Vec<(u32, u64)> = by_freq.iter().copied().filter(|(id, _)| !mcv_ids.contains(id)).collect();
        rest.sort_by_key(|&(id, _)| id);
        let other_count: u64 = rest.iter().map(|&(_, c)| c).sum();
        let other_total = other_count as f64 / n;
        let other_distinct = rest.len();

        let buckets = num_buckets.max(1).min(rest.len().max(1));
        let per_bucket = (other_count as f64 / buckets as f64).max(1.0);
        let mut bucket_bounds = Vec::with_capacity(buckets);
        let mut acc = 0u64;
        for &(id, c) in &rest {
            acc += c;
            if acc as f64 >= per_bucket * (bucket_bounds.len() + 1) as f64 {
                bucket_bounds.push(id);
            }
        }
        if let Some(&(last_id, _)) = rest.last() {
            if bucket_bounds.last() != Some(&last_id) {
                bucket_bounds.push(last_id);
            }
        }
        let bucket_mass = if bucket_bounds.is_empty() { 0.0 } else { other_total / bucket_bounds.len() as f64 };

        Self { mcv, mcv_total, bucket_bounds, bucket_mass, other_distinct, other_total }
    }

    /// Estimated fraction of rows whose id satisfies the constraint,
    /// assuming uniformity inside histogram buckets.
    pub fn selectivity(&self, constraint: &ColumnConstraint) -> f64 {
        match constraint {
            ColumnConstraint::Any => 1.0,
            ColumnConstraint::Empty => 0.0,
            _ => {
                // Exact contribution from the MCV list.
                let mcv_part: f64 = self.mcv.iter().filter(|(id, _)| constraint.matches(*id)).map(|&(_, f)| f).sum();
                // Histogram contribution: fraction of each bucket's id range
                // that intersects the constraint, times the bucket mass.
                let mut hist_part = 0.0;
                let mut lo = 0u32;
                for &hi in &self.bucket_bounds {
                    let width = (hi.saturating_sub(lo)) as f64 + 1.0;
                    let overlap = match constraint {
                        ColumnConstraint::Range { lo: c_lo, hi: c_hi } => {
                            let o_lo = (*c_lo).max(lo);
                            let o_hi = (*c_hi).min(hi);
                            if o_lo > o_hi {
                                0.0
                            } else {
                                (o_hi - o_lo) as f64 + 1.0
                            }
                        }
                        ColumnConstraint::Set(ids) => ids.iter().filter(|&&id| id >= lo && id <= hi).count() as f64,
                        ColumnConstraint::Exclude(v) => {
                            if *v >= lo && *v <= hi {
                                width - 1.0
                            } else {
                                width
                            }
                        }
                        ColumnConstraint::ExcludeSet(ids) => {
                            let holes = ids.iter().filter(|&&id| id >= lo && id <= hi).count();
                            width - holes as f64
                        }
                        _ => 0.0,
                    };
                    hist_part += self.bucket_mass * (overlap / width).clamp(0.0, 1.0);
                    lo = hi.saturating_add(1);
                }
                // Equality predicates on non-MCV values: uniform spread over
                // the remaining distinct values is the classic assumption.
                let point_refinement = match constraint {
                    ColumnConstraint::Range { lo, hi } if lo == hi => {
                        let in_mcv = self.mcv.iter().any(|&(id, _)| id == *lo);
                        if in_mcv {
                            None
                        } else if self.other_distinct > 0 {
                            Some(self.other_total / self.other_distinct as f64)
                        } else {
                            Some(0.0)
                        }
                    }
                    _ => None,
                };
                let estimate = match point_refinement {
                    Some(point) => mcv_part + point,
                    None => mcv_part + hist_part,
                };
                estimate.clamp(0.0, self.mcv_total + self.other_total)
            }
        }
    }

    /// Summary footprint: 12 bytes per MCV entry, 4 per bucket bound, plus
    /// the fixed scalars.
    pub fn size_bytes(&self) -> usize {
        (self.mcv.len() * 12) + (self.bucket_bounds.len() * 4) + 32
    }
}

/// A HyperLogLog-style distinct-count sketch over 64-bit hashed values.
///
/// `2^precision` one-byte registers track the maximum leading-zero rank
/// seen per register; [`NdvSketch::estimate`] applies the standard harmonic
/// mean with the small-range (linear counting) correction. Accuracy is the
/// usual ~`1.04 / sqrt(2^precision)` relative error, more than enough for
/// tier-1 distinct-count reasoning.
#[derive(Debug, Clone)]
pub struct NdvSketch {
    registers: Vec<u8>,
    precision: u8,
}

impl NdvSketch {
    /// Creates an empty sketch; `precision` is clamped to `4..=16`.
    pub fn new(precision: u8) -> Self {
        let precision = precision.clamp(4, 16);
        Self { registers: vec![0u8; 1usize << precision], precision }
    }

    /// Mixes a raw value into a well-distributed 64-bit hash
    /// (splitmix64-style finalizer).
    fn mix(value: u64) -> u64 {
        let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Observes one value (duplicates are free).
    // lint: allow_fn(index) - register and column indices are bounded by the precision/schema fixed at build time
    pub fn insert(&mut self, value: u64) {
        let hash = Self::mix(value);
        let index = (hash >> (64 - self.precision)) as usize;
        let remaining = hash << self.precision;
        // Rank = position of the first set bit in the remaining stream.
        let rank = (remaining.leading_zeros() as u8 + 1).min(64 - self.precision + 1);
        if rank > self.registers[index] {
            self.registers[index] = rank;
        }
    }

    /// Estimated number of distinct inserted values.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merges another sketch of the same precision (register-wise max).
    pub fn merge(&mut self, other: &NdvSketch) {
        // lint: allow(panic) - documented merge contract: mixing precisions silently corrupts NDV estimates
        assert_eq!(self.precision, other.precision, "cannot merge sketches of different precision");
        for (r, &o) in self.registers.iter_mut().zip(&other.registers) {
            *r = (*r).max(o);
        }
    }

    /// One byte per register.
    pub fn size_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// A materialized uniform sample of a table, shared by the `Sample`
/// baseline and any consumer that wants sample-based selectivity.
#[derive(Debug)]
pub struct TableSample {
    sample: Table,
    table_rows: u64,
}

impl TableSample {
    /// Keeps `fraction` of the table's rows, sampled uniformly without
    /// replacement.
    pub fn build(table: &Table, fraction: f64, seed: u64) -> Self {
        // lint: allow(panic) - documented build contract: a zero or >1 sample fraction is a caller bug
        assert!(fraction > 0.0 && fraction <= 1.0, "sample fraction must be in (0, 1]");
        let k = ((table.num_rows() as f64 * fraction).round() as usize).max(1);
        Self::build_with_rows(table, k, seed)
    }

    /// Keeps exactly `k` rows (clamped to the table size).
    pub fn build_with_rows(table: &Table, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = table.sample_row_indices(&mut rng, k.min(table.num_rows()));
        let sample = table.take_rows(&rows);
        Self { sample, table_rows: table.num_rows() as u64 }
    }

    /// Number of rows kept.
    pub fn num_rows(&self) -> usize {
        self.sample.num_rows()
    }

    /// Row count of the *full* table the sample was drawn from.
    pub fn table_rows(&self) -> u64 {
        self.table_rows
    }

    /// Fraction of sample rows matching the query. Fails
    /// [`EstimateError::Untrained`] on an empty sample and propagates
    /// query-validation errors from the executor.
    pub fn try_selectivity(&self, query: &Query) -> Result<f64, EstimateError> {
        if self.sample.num_rows() == 0 {
            return Err(EstimateError::untrained("materialized sample is empty"));
        }
        let hits = try_count_matches(&self.sample, query)?;
        Ok(hits as f64 / self.sample.num_rows() as f64)
    }

    /// The sample is stored dictionary-encoded: 4 bytes per cell.
    pub fn size_bytes(&self) -> usize {
        self.sample.num_rows() * self.sample.num_columns() * 4
    }
}

/// Everything [`TableStats`] keeps for one column.
#[derive(Debug, Clone)]
pub struct ColumnSummary {
    /// Dictionary domain size (number of encodable ids).
    pub domain_size: usize,
    /// Exact number of distinct ids present in the column.
    pub distinct: u64,
    /// Fraction of rows with no value. The dictionary encoding in
    /// `naru-data` has no null representation, so this is always 0 here; the
    /// field exists so the sidecar's schema matches what a real system's
    /// catalog would carry.
    pub null_fraction: f64,
    /// Smallest id present, `None` when the column is empty.
    pub min_id: Option<u32>,
    /// Largest id present, `None` when the column is empty.
    pub max_id: Option<u32>,
    /// Exact per-id row counts, kept only when `domain_size <=
    /// exact_counts_max_domain`.
    counts: Option<Vec<u64>>,
    /// MCV + equi-depth histogram for tier-1 approximate answers.
    pub histogram: ColumnHistogram,
    /// HLL sketch of the column's values (mergeable distinct-count summary).
    pub ndv_sketch: NdvSketch,
}

impl ColumnSummary {
    /// Exact per-id row counts when stored.
    pub fn exact_counts(&self) -> Option<&[u64]> {
        self.counts.as_deref()
    }
}

/// How a constraint relates to one column's stored statistics during
/// tier-0 classification.
enum ColumnAnswer {
    /// The constraint keeps every row of the column.
    Full,
    /// Exactly this many rows match (from stored exact counts).
    Exact(u64),
    /// The statistics cannot answer this constraint exactly.
    Unknown,
}

/// Per-column exact summaries + histograms + sketches for a whole table:
/// the sidecar an `Engine` consults before running the model.
///
/// Tier 0 uses [`TableStats::exact_cardinality`], which answers only when
/// the result is provably exact; tier 1 uses
/// [`TableStats::sketch_selectivity`], the per-column histogram product
/// under independence.
#[derive(Debug, Clone)]
pub struct TableStats {
    num_rows: u64,
    columns: Vec<ColumnSummary>,
}

impl TableStats {
    /// Builds statistics for every column with [`StatsConfig::default`].
    pub fn build(table: &Table) -> Self {
        Self::build_with(table, &StatsConfig::default())
    }

    /// Builds statistics for every column.
    pub fn build_with(table: &Table, config: &StatsConfig) -> Self {
        let num_rows = table.num_rows() as u64;
        let columns = table
            .columns()
            .iter()
            .map(|column| {
                let counts = column.value_counts();
                let distinct = counts.iter().filter(|&&c| c > 0).count() as u64;
                let min_id = counts.iter().position(|&c| c > 0).map(|i| i as u32);
                let max_id = counts.iter().rposition(|&c| c > 0).map(|i| i as u32);
                let histogram = ColumnHistogram::build(&counts, table.num_rows(), config.num_mcv, config.num_buckets);
                let mut ndv_sketch = NdvSketch::new(config.sketch_precision);
                for (id, &c) in counts.iter().enumerate() {
                    if c > 0 {
                        ndv_sketch.insert(id as u64);
                    }
                }
                let domain_size = column.domain_size();
                let keep_counts = config.exact_counts_max_domain > 0 && domain_size <= config.exact_counts_max_domain;
                ColumnSummary {
                    domain_size,
                    distinct,
                    null_fraction: 0.0,
                    min_id,
                    max_id,
                    counts: keep_counts.then_some(counts),
                    histogram,
                    ndv_sketch,
                }
            })
            .collect();
        Self { num_rows, columns }
    }

    /// Row count of the summarized table.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Number of summarized columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The summary for one column.
    // lint: allow_fn(index) - register and column indices are bounded by the precision/schema fixed at build time
    pub fn column(&self, index: usize) -> &ColumnSummary {
        &self.columns[index]
    }

    /// Classifies one column's constraint against its stored statistics.
    // lint: allow_fn(index) - register and column indices are bounded by the precision/schema fixed at build time
    fn classify(&self, col: usize, constraint: &ColumnConstraint) -> ColumnAnswer {
        let summary = &self.columns[col];
        // Structurally empty over this domain: no id can match, so the
        // whole query provably matches nothing, regardless of the data.
        if constraint.count(summary.domain_size) == 0 {
            return ColumnAnswer::Exact(0);
        }
        if let Some(counts) = &summary.counts {
            // Exact counts stored: sum the matching ids. Domains here are
            // small by construction, so a linear scan is fine.
            let matched: u64 =
                counts.iter().enumerate().filter(|(id, _)| constraint.matches(*id as u32)).map(|(_, &c)| c).sum();
            return if matched == self.num_rows { ColumnAnswer::Full } else { ColumnAnswer::Exact(matched) };
        }
        // No exact counts: min/max still prove full coverage or emptiness.
        let (Some(min_id), Some(max_id)) = (summary.min_id, summary.max_id) else {
            // No values present at all (zero-row table): trivially full.
            return ColumnAnswer::Full;
        };
        match constraint {
            ColumnConstraint::Any => ColumnAnswer::Full,
            ColumnConstraint::Range { lo, hi } => {
                if *lo <= min_id && *hi >= max_id {
                    ColumnAnswer::Full
                } else if *lo > max_id || *hi < min_id {
                    ColumnAnswer::Exact(0)
                } else {
                    ColumnAnswer::Unknown
                }
            }
            ColumnConstraint::Exclude(v) => {
                if *v < min_id || *v > max_id {
                    ColumnAnswer::Full
                } else {
                    ColumnAnswer::Unknown
                }
            }
            ColumnConstraint::ExcludeSet(ids) => {
                if ids.iter().all(|&id| id < min_id || id > max_id) {
                    ColumnAnswer::Full
                } else {
                    ColumnAnswer::Unknown
                }
            }
            ColumnConstraint::Set(ids) => {
                if ids.iter().all(|&id| id > max_id || id < min_id) {
                    ColumnAnswer::Exact(0)
                } else {
                    ColumnAnswer::Unknown
                }
            }
            // `Empty` is structurally zero and was handled above.
            ColumnConstraint::Empty => ColumnAnswer::Exact(0),
        }
    }

    /// The exact number of matching rows, when the stored statistics can
    /// prove it; `None` when any uncertainty remains. Exactness holds in
    /// three shapes: every constraint provably keeps all rows (answer =
    /// `num_rows`), some constraint provably keeps none (answer = 0), or
    /// exactly one column is genuinely filtered and its exact per-id counts
    /// are stored (answer = that column's matched-row sum; cross-column
    /// correlation cannot leak into a single-column count).
    pub fn exact_cardinality(&self, constraints: &[ColumnConstraint]) -> Option<u64> {
        // lint: allow(panic) - constraint width is fixed by the schema the sketch was built from
        assert_eq!(constraints.len(), self.columns.len(), "constraint vector width mismatch");
        let mut partial: Option<u64> = None;
        for (col, constraint) in constraints.iter().enumerate() {
            match self.classify(col, constraint) {
                ColumnAnswer::Full => {}
                ColumnAnswer::Exact(0) => return Some(0),
                ColumnAnswer::Exact(m) => {
                    if partial.is_some() {
                        // Two genuinely-filtered columns: the joint count
                        // needs correlation information we do not store.
                        return None;
                    }
                    partial = Some(m);
                }
                ColumnAnswer::Unknown => return None,
            }
        }
        Some(partial.unwrap_or(self.num_rows))
    }

    /// Tier-1 approximate selectivity: the product of per-column histogram
    /// selectivities under the independence assumption.
    // lint: allow_fn(index) - register and column indices are bounded by the precision/schema fixed at build time
    pub fn sketch_selectivity(&self, constraints: &[ColumnConstraint]) -> f64 {
        // lint: allow(panic) - constraint width is fixed by the schema the sketch was built from
        assert_eq!(constraints.len(), self.columns.len(), "constraint vector width mismatch");
        constraints
            .iter()
            .enumerate()
            .map(|(col, c)| self.columns[col].histogram.selectivity(c))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Total summary footprint across columns.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| {
                c.histogram.size_bytes() + c.ndv_sketch.size_bytes() + c.counts.as_ref().map_or(0, |v| v.len() * 8) + 48
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_data::synthetic::{dmv_like, independent_table};
    use naru_data::Column;
    use naru_query::{Predicate, Query};

    #[test]
    fn ndv_sketch_tracks_distinct_counts() {
        let mut sketch = NdvSketch::new(12);
        for v in 0..5000u64 {
            sketch.insert(v);
            sketch.insert(v); // duplicates are free
        }
        let est = sketch.estimate();
        assert!((est - 5000.0).abs() / 5000.0 < 0.1, "estimate {est} too far from 5000");

        let mut small = NdvSketch::new(12);
        for v in 0..17u64 {
            small.insert(v);
        }
        let est = small.estimate();
        assert!((est - 17.0).abs() < 3.0, "small-range estimate {est} too far from 17");
    }

    #[test]
    fn ndv_sketch_merge_is_a_union() {
        let mut a = NdvSketch::new(10);
        let mut b = NdvSketch::new(10);
        for v in 0..1000u64 {
            a.insert(v);
        }
        for v in 500..1500u64 {
            b.insert(v);
        }
        a.merge(&b);
        let est = a.estimate();
        assert!((est - 1500.0).abs() / 1500.0 < 0.15, "union estimate {est} too far from 1500");
    }

    #[test]
    fn exact_cardinality_answers_trivial_and_single_column_queries() {
        let table = dmv_like(3000, 5);
        let stats = TableStats::build(&table);
        let n = table.num_columns();

        // Unconstrained: everything matches.
        let all = Query::all().try_constraints(n).unwrap();
        assert_eq!(stats.exact_cardinality(&all), Some(3000));

        // Single-column predicates on exact-count columns are exact.
        for q in [
            Query::new(vec![Predicate::eq(0, 1)]),
            Query::new(vec![Predicate::le(6, 900)]),
            Query::new(vec![Predicate::neq(1, 2)]),
        ] {
            let constraints = q.try_constraints(n).unwrap();
            let expected = naru_query::try_count_matches(&table, &q).unwrap();
            assert_eq!(stats.exact_cardinality(&constraints), Some(expected), "query {q:?}");
        }

        // Two genuinely filtered columns: cannot be exact.
        let two = Query::new(vec![Predicate::eq(0, 1), Predicate::eq(1, 1)]).try_constraints(n).unwrap();
        assert_eq!(stats.exact_cardinality(&two), None);

        // A structurally empty constraint zeroes the whole query even next
        // to an unanswerable one.
        let empty = Query::new(vec![Predicate::between(0, 5, 2), Predicate::eq(1, 0)]).try_constraints(n).unwrap();
        assert_eq!(stats.exact_cardinality(&empty), Some(0));
    }

    #[test]
    fn exact_cardinality_uses_min_max_when_counts_are_dropped() {
        let table = independent_table(500, &[40, 60], 3);
        let config = StatsConfig { exact_counts_max_domain: 0, ..StatsConfig::default() };
        let stats = TableStats::build_with(&table, &config);
        // Full-domain range: provably all rows despite no stored counts.
        let full = Query::new(vec![Predicate::le(0, 39)]).try_constraints(2).unwrap();
        assert_eq!(stats.exact_cardinality(&full), Some(500));
        // Disjoint range: provably zero rows.
        let min = stats.column(1).min_id.unwrap();
        if min > 0 {
            let below = Query::new(vec![Predicate::lt(1, min)]).try_constraints(2).unwrap();
            assert_eq!(stats.exact_cardinality(&below), Some(0));
        }
        // A genuine partial filter is unanswerable without counts.
        let partial = Query::new(vec![Predicate::eq(0, 3)]).try_constraints(2).unwrap();
        assert_eq!(stats.exact_cardinality(&partial), None);
    }

    #[test]
    fn summaries_record_domain_shape() {
        let table = Table::new(
            "t",
            vec![Column::from_ids("a", vec![2, 3, 3, 7], 10), Column::from_ids("b", vec![0, 1, 2, 3], 4)],
        );
        let stats = TableStats::build(&table);
        let a = stats.column(0);
        assert_eq!((a.min_id, a.max_id, a.distinct), (Some(2), Some(7), 3));
        assert_eq!(a.null_fraction, 0.0);
        assert_eq!(a.exact_counts().unwrap()[3], 2);
        assert!(stats.size_bytes() > 0);
        assert_eq!(stats.num_rows(), 4);
        assert_eq!(stats.num_columns(), 2);
    }

    #[test]
    fn table_sample_selectivity_matches_direct_evaluation() {
        let table = dmv_like(1200, 9);
        let sample = TableSample::build(&table, 1.0, 5);
        let q = Query::new(vec![Predicate::eq(0, 0), Predicate::le(6, 800)]);
        let sel = sample.try_selectivity(&q).unwrap();
        let truth = naru_query::true_selectivity(&table, &q);
        assert!((sel - truth).abs() < 1e-12);
        assert_eq!(sample.num_rows(), 1200);
        assert_eq!(sample.table_rows(), 1200);
        assert_eq!(sample.size_bytes(), 1200 * table.num_columns() * 4);
        let empty = TableSample::build_with_rows(&table, 0, 1);
        assert!(matches!(empty.try_selectivity(&q), Err(EstimateError::Untrained { .. })));
    }
}
