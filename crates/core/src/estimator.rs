//! The user-facing Naru estimator.
//!
//! [`NaruEstimator`] bundles a trained autoregressive density model with a
//! progressive sampler behind the workspace-wide
//! [`SelectivityEstimator`] trait, so it can be dropped into the same
//! harness as every baseline. [`SamplingEstimator`] is the same wrapper
//! over an arbitrary [`ConditionalDensity`] — it is how the §6.7
//! microbenchmarks run the sampler against oracle and noisy-oracle models.
//!
//! For serving, convert a trained estimator into the lock-free
//! [`Engine`]/[`Session`](crate::engine::Session) API with
//! [`NaruEstimator::into_engine`]; the trait wrappers here keep a single
//! scratch behind a `Mutex` so they can stay `&self` for the experiment
//! harness.

use std::sync::Mutex;

use naru_data::Table;
use naru_query::{ColumnConstraint, Estimate, EstimateError, Query, SelectivityEstimator};

use crate::density::ConditionalDensity;
use crate::encoding::EncodingPolicy;
use crate::engine::{estimate_with_scratch, Engine};
use crate::model::{MadeModel, ModelConfig};
use crate::sampler::SamplerScratch;
use crate::stats::TableStats;
use crate::train::{train_model, TrainConfig, TrainReport};

/// Configuration for building a Naru estimator end-to-end.
#[derive(Debug, Clone)]
pub struct NaruConfig {
    /// Network architecture and encodings.
    pub model: ModelConfig,
    /// Training schedule.
    pub train: TrainConfig,
    /// Progressive-sampling paths per query.
    pub num_samples: usize,
}

impl Default for NaruConfig {
    fn default() -> Self {
        Self { model: ModelConfig::default(), train: TrainConfig::default(), num_samples: 2000 }
    }
}

impl NaruConfig {
    /// Starts a fluent [`NaruConfigBuilder`] from the default configuration.
    pub fn builder() -> NaruConfigBuilder {
        NaruConfigBuilder { config: Self::default() }
    }

    /// A small configuration (tiny network, few epochs, few samples) suited
    /// to unit tests, examples, and the `--quick` experiment scale.
    pub fn small() -> Self {
        Self {
            model: ModelConfig {
                hidden_sizes: vec![64, 64],
                encoding: crate::encoding::EncodingPolicy::compact(16),
                embedding_reuse: true,
                seed: 0,
            },
            train: TrainConfig::quick(4),
            num_samples: 500,
        }
    }

    /// Overrides the number of progressive samples.
    pub fn with_samples(mut self, num_samples: usize) -> Self {
        self.num_samples = num_samples;
        self
    }

    /// Overrides the RNG seeds used by the model and trainer.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.model.seed = seed;
        self.train.seed = seed;
        self
    }
}

/// Fluent builder for [`NaruConfig`] — the knobs most callers reach for,
/// without spelling out the nested `ModelConfig`/`TrainConfig` structs.
///
/// ```
/// use naru_core::NaruConfig;
///
/// let config = NaruConfig::builder()
///     .hidden_sizes(&[128, 128])
///     .epochs(6)
///     .batch_size(256)
///     .num_samples(1000)
///     .seed(7)
///     .build();
/// assert_eq!(config.model.hidden_sizes, vec![128, 128]);
/// assert_eq!(config.train.epochs, 6);
/// assert_eq!(config.num_samples, 1000);
/// ```
#[derive(Debug, Clone)]
pub struct NaruConfigBuilder {
    config: NaruConfig,
}

impl NaruConfigBuilder {
    /// Hidden layer widths of the MADE network.
    pub fn hidden_sizes(mut self, sizes: &[usize]) -> Self {
        self.config.model.hidden_sizes = sizes.to_vec();
        self
    }

    /// Input-encoding policy (one-hot / binary / embedding thresholds).
    pub fn encoding(mut self, policy: EncodingPolicy) -> Self {
        self.config.model.encoding = policy;
        self
    }

    /// Whether large-domain columns decode logits through embedding reuse.
    pub fn embedding_reuse(mut self, reuse: bool) -> Self {
        self.config.model.embedding_reuse = reuse;
        self
    }

    /// Number of training epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.train.epochs = epochs;
        self
    }

    /// Training minibatch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.train.batch_size = batch_size;
        self
    }

    /// Adam learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.config.train.adam.lr = lr;
        self
    }

    /// Progressive-sampling paths per query.
    pub fn num_samples(mut self, num_samples: usize) -> Self {
        self.config.num_samples = num_samples;
        self
    }

    /// Seed shared by weight init, training shuffles, and evaluation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.model.seed = seed;
        self.config.train.seed = seed;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> NaruConfig {
        self.config
    }
}

/// Per-estimator mutable state: the sampling scratch plus the reused
/// constraint-compilation buffer, guarded together so the trait's `&self`
/// entry points stay `Sync`.
#[derive(Default)]
struct EstimatorScratch {
    sampler: SamplerScratch,
    constraints: Vec<ColumnConstraint>,
}

/// A trained Naru model plus its progressive-sampling state.
///
/// Estimation through the [`SelectivityEstimator`] trait reuses one
/// internal scratch behind a `Mutex` (uncontended in single-threaded
/// harnesses). For concurrent serving, convert into an [`Engine`] and give
/// each thread its own `Session` instead.
pub struct NaruEstimator {
    model: MadeModel,
    num_rows: u64,
    num_samples: usize,
    seed: u64,
    table_stats: Option<TableStats>,
    scratch: Mutex<EstimatorScratch>,
}

impl NaruEstimator {
    /// Trains a model on `table` and wraps it as an estimator. Also returns
    /// the per-epoch training report (Figure 5's raw data).
    pub fn train(table: &Table, config: &NaruConfig) -> (Self, TrainReport) {
        let mut model = MadeModel::new(table.schema().domain_sizes(), &config.model);
        let report = train_model(&mut model, table, &config.train);
        // Training is the one place with the raw table in hand, so build the
        // exact-statistics sidecar here; `into_engine` carries it into the
        // tiered serving path.
        let estimator = Self::from_model(model, config.num_samples, table.num_rows() as u64)
            .with_table_stats(TableStats::build(table));
        (estimator, report)
    }

    /// Wraps an already-trained model. `num_rows` is the modeled table's row
    /// count, used to report estimated cardinalities.
    pub fn from_model(model: MadeModel, num_samples: usize, num_rows: u64) -> Self {
        Self {
            model,
            num_rows,
            num_samples,
            seed: 0,
            table_stats: None,
            scratch: Mutex::new(EstimatorScratch::default()),
        }
    }

    /// Attaches (or replaces) the exact-statistics sidecar used by the
    /// tiered serving path. `train` does this automatically; `from_model`
    /// callers who have the table can opt in here.
    pub fn with_table_stats(mut self, stats: TableStats) -> Self {
        self.table_stats = Some(stats);
        self
    }

    /// The exact-statistics sidecar, if one was built or attached.
    pub fn table_stats(&self) -> Option<&TableStats> {
        self.table_stats.as_ref()
    }

    /// Changes the number of progressive samples (Naru-1000 vs Naru-2000 …).
    /// A pure knob: no sampler or scratch is rebuilt — buffers resize lazily
    /// on the next estimate.
    pub fn set_num_samples(&mut self, num_samples: usize) {
        self.num_samples = num_samples;
    }

    /// The configured number of progressive samples.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// The underlying density model.
    pub fn model(&self) -> &MadeModel {
        &self.model
    }

    /// Mutable access to the model, for fine-tuning on new data.
    pub fn model_mut(&mut self) -> &mut MadeModel {
        &mut self.model
    }

    /// Row count of the table the model was trained on.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Estimates a query with an explicit sample count, reusing the
    /// estimator's scratch (no per-call sampler construction).
    pub fn try_estimate_with_samples(&self, query: &Query, num_samples: usize) -> Result<Estimate, EstimateError> {
        let scratch = &mut *self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        estimate_with_scratch(
            &self.model,
            self.num_rows,
            query,
            num_samples,
            self.seed,
            crate::Precision::Exact,
            &mut scratch.sampler,
            &mut scratch.constraints,
        )
    }

    /// Converts the estimator into a shareable [`Engine`] (consuming it;
    /// the model moves into an `Arc`). The engine inherits the estimator's
    /// sample count and seed as session defaults.
    pub fn into_engine(self) -> Engine {
        let engine = Engine::new(self.model, self.num_rows).with_samples(self.num_samples).with_seed(self.seed);
        match self.table_stats {
            Some(stats) => engine.with_table_stats(stats),
            None => engine,
        }
    }
}

impl SelectivityEstimator for NaruEstimator {
    fn name(&self) -> String {
        format!("Naru-{}", self.num_samples)
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        self.try_estimate_with_samples(query, self.num_samples)
    }

    fn try_estimate_batch(&self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        // Lock once for the whole batch instead of per query.
        let scratch = &mut *self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        queries
            .iter()
            .map(|query| {
                estimate_with_scratch(
                    &self.model,
                    self.num_rows,
                    query,
                    self.num_samples,
                    self.seed,
                    crate::Precision::Exact,
                    &mut scratch.sampler,
                    &mut scratch.constraints,
                )
            })
            .collect()
    }

    fn size_bytes(&self) -> usize {
        self.model.size_bytes()
    }
}

/// Progressive sampling over an arbitrary density (oracle, noisy oracle, or
/// a column-wise model), exposed as a [`SelectivityEstimator`].
pub struct SamplingEstimator<D: ConditionalDensity> {
    density: D,
    num_samples: usize,
    seed: u64,
    label: String,
    size_bytes: usize,
    num_rows: u64,
    scratch: Mutex<EstimatorScratch>,
}

impl<D: ConditionalDensity> SamplingEstimator<D> {
    /// Wraps `density` with `num_samples` progressive-sampling paths.
    pub fn new(density: D, num_samples: usize, label: impl Into<String>) -> Self {
        Self {
            density,
            num_samples,
            seed: 0,
            label: label.into(),
            size_bytes: 0,
            num_rows: 0,
            scratch: Mutex::new(EstimatorScratch::default()),
        }
    }

    /// Records a nominal summary size (oracles have no meaningful size; a
    /// trained model passes its parameter bytes).
    pub fn with_size_bytes(mut self, size: usize) -> Self {
        self.size_bytes = size;
        self
    }

    /// Records the modeled table's row count so estimates report
    /// cardinalities. Without it, `Estimate::estimated_rows` is `0` (the
    /// selectivity is still exact).
    pub fn with_num_rows(mut self, num_rows: u64) -> Self {
        self.num_rows = num_rows;
        self
    }

    /// The wrapped density.
    pub fn density(&self) -> &D {
        &self.density
    }
}

impl<D: ConditionalDensity> SelectivityEstimator for SamplingEstimator<D> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn try_estimate(&self, query: &Query) -> Result<Estimate, EstimateError> {
        let scratch = &mut *self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        estimate_with_scratch(
            &self.density,
            self.num_rows,
            query,
            self.num_samples,
            self.seed,
            crate::Precision::Exact,
            &mut scratch.sampler,
            &mut scratch.constraints,
        )
    }

    fn size_bytes(&self) -> usize {
        self.size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::oracle::OracleDensity;
    use crate::sampler::{ProgressiveSampler, SamplerConfig};
    use naru_data::synthetic::correlated_pair;
    use naru_query::{q_error_from_selectivity, true_selectivity, Predicate, WorkloadConfig};

    fn sel(est: &dyn SelectivityEstimator, q: &Query) -> f64 {
        est.try_estimate(q).expect("valid query").selectivity
    }

    #[test]
    fn trained_estimator_beats_independence_on_correlated_data() {
        // The core claim of the paper in miniature: on correlated data the
        // learned joint beats the independence assumption.
        let table = correlated_pair(3000, 6, 0.95, 9);
        let config = NaruConfig {
            model: ModelConfig {
                hidden_sizes: vec![32, 32],
                encoding: crate::encoding::EncodingPolicy::compact(8),
                embedding_reuse: true,
                seed: 2,
            },
            train: TrainConfig { epochs: 6, batch_size: 128, eval_tuples: 0, ..Default::default() },
            num_samples: 300,
        };
        let (estimator, _) = NaruEstimator::train(&table, &config);

        // Independence baseline computed from exact marginals.
        let indep = crate::density::IndependentDensity::from_table(&table);

        let queries = vec![
            Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]),
            Query::new(vec![Predicate::eq(0, 1), Predicate::eq(1, 1)]),
            Query::new(vec![Predicate::le(0, 1), Predicate::le(1, 1)]),
        ];
        let mut naru_worse = 0;
        for q in &queries {
            let truth = true_selectivity(&table, q);
            let naru_est = sel(&estimator, q);
            let indep_est: f64 = {
                // Closed-form product of marginal selectivities.
                let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 200, seed: 1 });
                sampler.estimate(&indep, &q.constraints(2))
            };
            let naru_err = q_error_from_selectivity(naru_est, truth, table.num_rows());
            let indep_err = q_error_from_selectivity(indep_est, truth, table.num_rows());
            if naru_err > indep_err * 1.05 {
                naru_worse += 1;
            }
        }
        assert!(naru_worse <= 1, "Naru lost to independence on {naru_worse}/3 correlated queries");
    }

    #[test]
    fn estimator_name_and_size() {
        let table = correlated_pair(300, 4, 0.8, 1);
        let config = NaruConfig::small().with_samples(123);
        let (est, _) = NaruEstimator::train(&table, &config);
        assert_eq!(est.name(), "Naru-123");
        assert!(est.size_bytes() > 0);
        assert_eq!(est.num_rows(), 300);
    }

    #[test]
    fn builder_covers_the_common_knobs() {
        let config = NaruConfig::builder()
            .hidden_sizes(&[16, 16])
            .epochs(2)
            .batch_size(64)
            .learning_rate(1e-3)
            .num_samples(77)
            .embedding_reuse(false)
            .encoding(EncodingPolicy::compact(8))
            .seed(5)
            .build();
        assert_eq!(config.model.hidden_sizes, vec![16, 16]);
        assert!(!config.model.embedding_reuse);
        assert_eq!(config.train.epochs, 2);
        assert_eq!(config.train.batch_size, 64);
        assert_eq!(config.train.seed, 5);
        assert_eq!(config.model.seed, 5);
        assert_eq!(config.num_samples, 77);
    }

    #[test]
    fn set_num_samples_is_a_pure_knob() {
        let table = correlated_pair(400, 4, 0.8, 2);
        let (mut est, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(100));
        let q = Query::new(vec![Predicate::le(0, 2)]);
        let at_100 = sel(&est, &q);
        // Explicit-count estimation through the same scratch matches the
        // estimator reconfigured to that count.
        let explicit = est.try_estimate_with_samples(&q, 40).unwrap().selectivity;
        est.set_num_samples(40);
        assert_eq!(est.name(), "Naru-40");
        assert_eq!(sel(&est, &q), explicit);
        est.set_num_samples(100);
        assert_eq!(sel(&est, &q), at_100);
    }

    #[test]
    fn sampling_estimator_wraps_oracle() {
        let table = correlated_pair(1000, 6, 0.9, 4);
        let oracle = OracleDensity::new(&table);
        let est = SamplingEstimator::new(oracle, 400, "Oracle-400").with_num_rows(table.num_rows() as u64);
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 1)]);
        let truth = true_selectivity(&table, &q);
        let estimate = est.try_estimate(&q).unwrap();
        assert!(q_error_from_selectivity(estimate.selectivity, truth, table.num_rows()) < 1.5);
        assert!(estimate.live_paths.unwrap() <= 400);
        assert_eq!(est.name(), "Oracle-400");
        assert_eq!(est.size_bytes(), 0);
    }

    #[test]
    fn estimates_stay_in_unit_interval_across_a_workload() {
        let table = correlated_pair(800, 8, 0.7, 5);
        let (est, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(100));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let workload = naru_query::generate_workload(
            &table,
            &WorkloadConfig { min_filters: 1, max_filters: 2, ..Default::default() },
            20,
            &mut rng,
        );
        for lq in &workload {
            let s = sel(&est, &lq.query);
            assert!((0.0..=1.0).contains(&s), "selectivity {s} out of range");
        }
    }

    #[test]
    fn into_engine_preserves_estimates() {
        let table = correlated_pair(600, 5, 0.85, 6);
        let (est, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(150));
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 1)]);
        let direct = est.try_estimate(&q).unwrap();
        let engine = est.into_engine();
        let via_session = engine.session().estimate(&q).unwrap();
        assert_eq!(direct.selectivity, via_session.selectivity);
        assert_eq!(direct.live_paths, via_session.live_paths);
        assert_eq!(engine.num_rows(), 600);
    }
}
