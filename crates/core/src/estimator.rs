//! The user-facing Naru estimator.
//!
//! [`NaruEstimator`] bundles a trained autoregressive density model with a
//! progressive sampler behind the workspace-wide
//! [`SelectivityEstimator`] trait, so it can be dropped into the same
//! harness as every baseline. [`SamplingEstimator`] is the same wrapper
//! over an arbitrary [`ConditionalDensity`] — it is how the §6.7
//! microbenchmarks run the sampler against oracle and noisy-oracle models.

use naru_data::Table;
use naru_query::{Query, SelectivityEstimator};

use crate::density::ConditionalDensity;
use crate::model::{MadeModel, ModelConfig};
use crate::sampler::{ProgressiveSampler, SamplerConfig};
use crate::train::{train_model, TrainConfig, TrainReport};

/// Configuration for building a Naru estimator end-to-end.
#[derive(Debug, Clone)]
pub struct NaruConfig {
    /// Network architecture and encodings.
    pub model: ModelConfig,
    /// Training schedule.
    pub train: TrainConfig,
    /// Progressive-sampling paths per query.
    pub num_samples: usize,
}

impl Default for NaruConfig {
    fn default() -> Self {
        Self { model: ModelConfig::default(), train: TrainConfig::default(), num_samples: 2000 }
    }
}

impl NaruConfig {
    /// A small configuration (tiny network, few epochs, few samples) suited
    /// to unit tests, examples, and the `--quick` experiment scale.
    pub fn small() -> Self {
        Self {
            model: ModelConfig {
                hidden_sizes: vec![64, 64],
                encoding: crate::encoding::EncodingPolicy::compact(16),
                embedding_reuse: true,
                seed: 0,
            },
            train: TrainConfig::quick(4),
            num_samples: 500,
        }
    }

    /// Overrides the number of progressive samples.
    pub fn with_samples(mut self, num_samples: usize) -> Self {
        self.num_samples = num_samples;
        self
    }

    /// Overrides the RNG seeds used by the model and trainer.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.model.seed = seed;
        self.train.seed = seed;
        self
    }
}

/// A trained Naru model plus its progressive sampler.
pub struct NaruEstimator {
    model: MadeModel,
    sampler: ProgressiveSampler,
    num_samples: usize,
}

impl NaruEstimator {
    /// Trains a model on `table` and wraps it as an estimator. Also returns
    /// the per-epoch training report (Figure 5's raw data).
    pub fn train(table: &Table, config: &NaruConfig) -> (Self, TrainReport) {
        let mut model = MadeModel::new(table.schema().domain_sizes(), &config.model);
        let report = train_model(&mut model, table, &config.train);
        (Self::from_model(model, config.num_samples), report)
    }

    /// Wraps an already-trained model.
    pub fn from_model(model: MadeModel, num_samples: usize) -> Self {
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples, seed: 0 });
        Self { model, sampler, num_samples }
    }

    /// Changes the number of progressive samples (Naru-1000 vs Naru-2000 …).
    pub fn set_num_samples(&mut self, num_samples: usize) {
        self.num_samples = num_samples;
        self.sampler = ProgressiveSampler::new(SamplerConfig { num_samples, seed: 0 });
    }

    /// The underlying density model.
    pub fn model(&self) -> &MadeModel {
        &self.model
    }

    /// Mutable access to the model, for fine-tuning on new data.
    pub fn model_mut(&mut self) -> &mut MadeModel {
        &mut self.model
    }

    /// Estimates a query with an explicit sample count (without rebuilding
    /// the estimator).
    pub fn estimate_with_samples(&self, query: &Query, num_samples: usize) -> f64 {
        let sampler = ProgressiveSampler::new(SamplerConfig { num_samples, seed: 0 });
        sampler.estimate(&self.model, &query.constraints(self.model.num_columns()))
    }
}

impl SelectivityEstimator for NaruEstimator {
    fn name(&self) -> String {
        format!("Naru-{}", self.num_samples)
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.sampler.estimate(&self.model, &query.constraints(self.model.num_columns()))
    }

    fn size_bytes(&self) -> usize {
        self.model.size_bytes()
    }
}

/// Progressive sampling over an arbitrary density (oracle, noisy oracle, or
/// a column-wise model), exposed as a [`SelectivityEstimator`].
pub struct SamplingEstimator<D: ConditionalDensity> {
    density: D,
    sampler: ProgressiveSampler,
    label: String,
    size_bytes: usize,
}

impl<D: ConditionalDensity> SamplingEstimator<D> {
    /// Wraps `density` with `num_samples` progressive-sampling paths.
    pub fn new(density: D, num_samples: usize, label: impl Into<String>) -> Self {
        Self {
            density,
            sampler: ProgressiveSampler::new(SamplerConfig { num_samples, seed: 0 }),
            label: label.into(),
            size_bytes: 0,
        }
    }

    /// Records a nominal summary size (oracles have no meaningful size; a
    /// trained model passes its parameter bytes).
    pub fn with_size_bytes(mut self, size: usize) -> Self {
        self.size_bytes = size;
        self
    }

    /// The wrapped density.
    pub fn density(&self) -> &D {
        &self.density
    }
}

impl<D: ConditionalDensity> SelectivityEstimator for SamplingEstimator<D> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.sampler.estimate(&self.density, &query.constraints(self.density.num_columns()))
    }

    fn size_bytes(&self) -> usize {
        self.size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleDensity;
    use naru_data::synthetic::correlated_pair;
    use naru_query::{q_error_from_selectivity, true_selectivity, Predicate, WorkloadConfig};

    #[test]
    fn trained_estimator_beats_independence_on_correlated_data() {
        // The core claim of the paper in miniature: on correlated data the
        // learned joint beats the independence assumption.
        let table = correlated_pair(3000, 6, 0.95, 9);
        let config = NaruConfig {
            model: ModelConfig {
                hidden_sizes: vec![32, 32],
                encoding: crate::encoding::EncodingPolicy::compact(8),
                embedding_reuse: true,
                seed: 2,
            },
            train: TrainConfig { epochs: 6, batch_size: 128, eval_tuples: 0, ..Default::default() },
            num_samples: 300,
        };
        let (estimator, _) = NaruEstimator::train(&table, &config);

        // Independence baseline computed from exact marginals.
        let indep = crate::density::IndependentDensity::from_table(&table);

        let queries = vec![
            Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]),
            Query::new(vec![Predicate::eq(0, 1), Predicate::eq(1, 1)]),
            Query::new(vec![Predicate::le(0, 1), Predicate::le(1, 1)]),
        ];
        let mut naru_worse = 0;
        for q in &queries {
            let truth = true_selectivity(&table, q);
            let naru_est = estimator.estimate(q);
            let indep_est: f64 = {
                // Closed-form product of marginal selectivities.
                let sampler = ProgressiveSampler::new(SamplerConfig { num_samples: 200, seed: 1 });
                sampler.estimate(&indep, &q.constraints(2))
            };
            let naru_err = q_error_from_selectivity(naru_est, truth, table.num_rows());
            let indep_err = q_error_from_selectivity(indep_est, truth, table.num_rows());
            if naru_err > indep_err * 1.05 {
                naru_worse += 1;
            }
        }
        assert!(naru_worse <= 1, "Naru lost to independence on {naru_worse}/3 correlated queries");
    }

    #[test]
    fn estimator_name_and_size() {
        let table = correlated_pair(300, 4, 0.8, 1);
        let config = NaruConfig::small().with_samples(123);
        let (est, _) = NaruEstimator::train(&table, &config);
        assert_eq!(est.name(), "Naru-123");
        assert!(est.size_bytes() > 0);
    }

    #[test]
    fn sampling_estimator_wraps_oracle() {
        let table = correlated_pair(1000, 6, 0.9, 4);
        let oracle = OracleDensity::new(&table);
        let est = SamplingEstimator::new(oracle, 400, "Oracle-400");
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 1)]);
        let truth = true_selectivity(&table, &q);
        let sel = est.estimate(&q);
        assert!(q_error_from_selectivity(sel, truth, table.num_rows()) < 1.5);
        assert_eq!(est.name(), "Oracle-400");
        assert_eq!(est.size_bytes(), 0);
    }

    #[test]
    fn estimates_stay_in_unit_interval_across_a_workload() {
        let table = correlated_pair(800, 8, 0.7, 5);
        let (est, _) = NaruEstimator::train(&table, &NaruConfig::small().with_samples(100));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let workload = naru_query::generate_workload(
            &table,
            &WorkloadConfig { min_filters: 1, max_filters: 2, ..Default::default() },
            20,
            &mut rng,
        );
        for lq in &workload {
            let sel = est.estimate(&lq.query);
            assert!((0.0..=1.0).contains(&sel), "selectivity {sel} out of range");
        }
    }
}
