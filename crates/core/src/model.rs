//! The MADE-style masked autoregressive model ("architecture B", §4.3).
//!
//! One network models the whole relation. Each column's dictionary id is
//! encoded (one-hot / binary / embedding per [`crate::encoding`]), the
//! encodings are concatenated and pushed through a stack of *masked* linear
//! layers whose connectivity enforces the autoregressive property, and the
//! output is partitioned into per-column blocks that decode into logits
//! over each column's domain — either directly or through the
//! "embedding reuse" trick for large domains (§4.2).
//!
//! Training maximizes the likelihood of the data (Eq. 2): the per-tuple
//! negative log-likelihood decomposes into one softmax cross-entropy term
//! per column.

use naru_nn::linear::Linear;
use naru_nn::loss::cross_entropy_grad_into;
use naru_nn::made::{build_made_masks, GroupSpec};
use naru_nn::optimizer::AdamConfig;
use naru_nn::{Embedding, QuantDecoder, QuantLinear, Relu};
use naru_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::density::{ConditionalDensity, InferenceScratch};
use crate::encoding::{encode_binary, ColumnEncoding, EncodingPolicy};

/// Hyper-parameters of the MADE model.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Hidden layer widths, e.g. `[256, 256, 256, 256]`.
    pub hidden_sizes: Vec<usize>,
    /// Input-encoding policy.
    pub encoding: EncodingPolicy,
    /// Use the embedding-reuse output decoding for embedding-encoded
    /// columns (§4.2). When false, every column gets a direct output head.
    pub embedding_reuse: bool,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden_sizes: vec![128, 128, 128, 128],
            encoding: EncodingPolicy::default(),
            embedding_reuse: true,
            seed: 0,
        }
    }
}

impl ModelConfig {
    /// A small configuration suited to unit tests and quick experiments.
    pub fn tiny() -> Self {
        Self { hidden_sizes: vec![32, 32], encoding: EncodingPolicy::compact(8), embedding_reuse: true, seed: 0 }
    }
}

/// How one column's output block turns into logits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputKind {
    /// The block *is* the logits (width `|A_i|`).
    Direct,
    /// The block is an `h`-dim feature multiplied with the column's
    /// embedding table (width `h`, logits width `|A_i|`).
    EmbeddingReuse,
}

/// The quantized inference mirror of the trunk: per-row i8 copies of every
/// weight matrix the relaxed-precision walk touches. Input encodings stay
/// exact f32 (embedding *lookups* are reads, not multiplies); only the
/// matmuls — hidden stack, output blocks, embedding-reuse decode — run
/// against the mirrors.
struct QuantModel {
    hidden: Vec<QuantLinear>,
    output: QuantLinear,
    /// One decoder per column, present exactly for `EmbeddingReuse` outputs.
    decoders: Vec<Option<QuantDecoder>>,
}

/// The masked autoregressive density model.
pub struct MadeModel {
    domain_sizes: Vec<usize>,
    encodings: Vec<ColumnEncoding>,
    output_kinds: Vec<OutputKind>,
    embeddings: Vec<Option<Embedding>>,
    spec: GroupSpec,
    input_offsets: Vec<usize>,
    output_offsets: Vec<usize>,
    hidden: Vec<Linear>,
    output: Linear,
    relu: Relu,
    /// Inference-only relaxed-precision mirror; built by
    /// [`ConditionalDensity::prepare_relaxed`], dropped by every training
    /// step so it can never go stale against the f32 weights.
    quant: Option<QuantModel>,
}

impl MadeModel {
    /// Builds an untrained model for a table with the given domain sizes.
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    pub fn new(domain_sizes: &[usize], config: &ModelConfig) -> Self {
        // lint: allow(panic) - documented constructor contract: a table with no columns is a caller bug
        assert!(!domain_sizes.is_empty(), "model needs at least one column");
        // lint: allow(panic) - documented constructor contract: an MLP needs at least one hidden layer
        assert!(!config.hidden_sizes.is_empty(), "model needs at least one hidden layer");
        let mut rng = StdRng::seed_from_u64(config.seed);

        let encodings = config.encoding.choose_all(domain_sizes);
        let mut embeddings: Vec<Option<Embedding>> = Vec::with_capacity(domain_sizes.len());
        let mut output_kinds = Vec::with_capacity(domain_sizes.len());
        let mut input_widths = Vec::with_capacity(domain_sizes.len());
        let mut output_widths = Vec::with_capacity(domain_sizes.len());

        for (col, (&domain, encoding)) in domain_sizes.iter().zip(encodings.iter()).enumerate() {
            let _ = col;
            input_widths.push(encoding.width(domain));
            match encoding {
                ColumnEncoding::Embedding { dim } => {
                    embeddings.push(Some(Embedding::new(&mut rng, domain, *dim)));
                    if config.embedding_reuse {
                        output_kinds.push(OutputKind::EmbeddingReuse);
                        output_widths.push(*dim);
                    } else {
                        output_kinds.push(OutputKind::Direct);
                        output_widths.push(domain);
                    }
                }
                _ => {
                    embeddings.push(None);
                    output_kinds.push(OutputKind::Direct);
                    output_widths.push(domain);
                }
            }
        }

        let spec = GroupSpec::new(input_widths, output_widths);
        let masks = build_made_masks(&spec, &config.hidden_sizes);
        let mut hidden = Vec::with_capacity(config.hidden_sizes.len());
        let mut in_dim = spec.total_input();
        for (i, &h) in config.hidden_sizes.iter().enumerate() {
            hidden.push(Linear::new_masked(&mut rng, in_dim, h, masks[i].clone()));
            in_dim = h;
        }
        let output =
            Linear::new_masked(&mut rng, in_dim, spec.total_output(), masks[config.hidden_sizes.len()].clone());

        let input_offsets = spec.input_offsets();
        let output_offsets = spec.output_offsets();
        Self {
            domain_sizes: domain_sizes.to_vec(),
            encodings,
            output_kinds,
            embeddings,
            spec,
            input_offsets,
            output_offsets,
            hidden,
            output,
            relu: Relu,
            quant: None,
        }
    }

    /// Number of trainable parameters (masked weights excluded).
    pub fn param_count(&self) -> usize {
        let net: usize = self.hidden.iter().map(Linear::param_count).sum::<usize>() + self.output.param_count();
        let emb: usize = self.embeddings.iter().flatten().map(Embedding::param_count).sum();
        net + emb
    }

    /// Model size in bytes (f32 parameters), the quantity the paper's
    /// storage budgets constrain.
    pub fn size_bytes(&self) -> usize {
        naru_nn::params_size_bytes(self.param_count())
    }

    /// The encoding chosen for each column.
    pub fn encodings(&self) -> &[ColumnEncoding] {
        &self.encodings
    }

    /// Encodes one id into column `col`'s input block of a row slice.
    #[inline]
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    fn encode_slot(&self, col: usize, id: u32, row: &mut [f32]) {
        let off = self.input_offsets[col];
        let width = self.spec.input_widths[col];
        let slot = &mut row[off..off + width];
        match &self.encodings[col] {
            ColumnEncoding::OneHot => slot[id as usize] = 1.0,
            ColumnEncoding::Binary => encode_binary(id, width, slot),
            ColumnEncoding::Embedding { .. } => {
                // lint: allow(panic) - embeddings[col] is Some for every Embedding column by construction in new()
                let emb = self.embeddings[col].as_ref().expect("embedding present");
                slot.copy_from_slice(emb.table().row(id as usize));
            }
        }
    }

    /// Encodes a batch of id tuples into the network input matrix.
    fn encode_input(&self, tuples: &[Vec<u32>]) -> Matrix {
        let mut x = Matrix::zeros(tuples.len(), self.spec.total_input());
        for (r, tuple) in tuples.iter().enumerate() {
            debug_assert_eq!(tuple.len(), self.domain_sizes.len(), "tuple width mismatch");
            let row = x.row_mut(r);
            for (col, &id) in tuple.iter().enumerate() {
                self.encode_slot(col, id, row);
            }
        }
        x
    }

    /// Incrementally maintains the encoded batch in `scratch.enc` so that
    /// the leading `col` column blocks are valid for the flat `tuples`
    /// batch. Blocks already encoded on a previous step are left untouched —
    /// the sampler's prefixes never change once sampled (only compact) —
    /// so each step encodes exactly one new block instead of re-encoding
    /// the whole prefix.
    ///
    /// Blocks `>= col` stay zero; the MADE masks hold the weights out of
    /// those blocks at exactly 0, so this is equivalent to encoding the
    /// full tuple as the allocating path does.
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    fn encode_prefix_into(&self, tuples: &[u32], rows: usize, col: usize, scratch: &mut InferenceScratch) {
        let total = self.spec.total_input();
        let n = self.domain_sizes.len();
        let fresh = !scratch.enc_valid || scratch.enc.shape() != (rows, total);
        if fresh {
            // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
            scratch.enc.resize(rows, total);
            scratch.enc.fill_zero();
            scratch.enc_cols = 0;
            scratch.enc_valid = true;
        }
        for c in scratch.enc_cols..col {
            for r in 0..rows {
                let id = tuples[r * n + c];
                self.encode_slot(c, id, scratch.enc.row_mut(r));
            }
        }
        scratch.enc_cols = scratch.enc_cols.max(col);
    }

    /// Relaxed-precision twin of [`MadeModel::forward_hidden_ws`]: the same
    /// buffer-0/1 ping-pong, but every layer runs its quantized mirror with
    /// bias + ReLU fused into the output loop (no separate activation
    /// sweep). Returns the buffer index holding the final hidden activation.
    fn forward_hidden_ws_quant(&self, quant: &QuantModel, input: &Matrix, ws: &mut naru_nn::Workspace) -> usize {
        let mut cur = 0usize;
        for (i, layer) in quant.hidden.iter().enumerate() {
            if i == 0 {
                layer.forward_relu_into(input, ws.buf_mut(0));
            } else {
                let next = 1 - cur;
                let (read, write) = ws.pair_mut(cur, next);
                layer.forward_relu_into(read, write);
                cur = next;
            }
        }
        cur
    }

    /// Runs the hidden stack over `input` using workspace buffers 0 and 1
    /// (ping-pong), returning the buffer index holding the final hidden
    /// activation. Allocation-free once the buffers are warm.
    fn forward_hidden_ws(&self, input: &Matrix, ws: &mut naru_nn::Workspace) -> usize {
        let mut cur = 0usize;
        for (i, layer) in self.hidden.iter().enumerate() {
            if i == 0 {
                layer.forward_into(input, ws.buf_mut(0));
            } else {
                let next = 1 - cur;
                let (read, write) = ws.pair_mut(cur, next);
                layer.forward_into(read, write);
                cur = next;
            }
            self.relu.forward_inplace(ws.buf_mut(cur));
        }
        cur
    }

    /// Runs the trunk (hidden stack + output layer) without retaining
    /// activations — the inference path.
    fn forward_trunk(&self, input: &Matrix) -> Matrix {
        let mut h = input.clone();
        for layer in &self.hidden {
            let pre = layer.forward(&h);
            h = self.relu.forward(&pre);
        }
        self.output.forward(&h)
    }

    /// Extracts column `col`'s block from the trunk output.
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    fn output_block(&self, trunk_out: &Matrix, col: usize) -> Matrix {
        let lo = self.output_offsets[col];
        let hi = self.output_offsets[col + 1];
        let mut block = Matrix::zeros(trunk_out.rows(), hi - lo);
        for r in 0..trunk_out.rows() {
            block.row_mut(r).copy_from_slice(&trunk_out.row(r)[lo..hi]);
        }
        block
    }

    /// Logits over column `col`'s domain for a batch (applies embedding
    /// reuse decoding when configured).
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    fn logits_for_column(&self, trunk_out: &Matrix, col: usize) -> Matrix {
        let block = self.output_block(trunk_out, col);
        match self.output_kinds[col] {
            OutputKind::Direct => block,
            OutputKind::EmbeddingReuse => {
                // lint: allow(panic) - embeddings[col] is Some for every EmbeddingReuse output by construction in new()
                let emb = self.embeddings[col].as_ref().expect("embedding present");
                emb.decode_logits(&block)
            }
        }
    }

    /// One maximum-likelihood gradient step on a batch of tuples.
    ///
    /// Returns the mean negative log-likelihood of the batch in nats per
    /// tuple (the training loss). Convenience wrapper over
    /// [`MadeModel::train_step_with`] with a transient workspace; training
    /// loops should hold one [`TrainWorkspace`](crate::train::TrainWorkspace)
    /// and reuse it so every batch after the first allocates nothing.
    pub fn train_step(&mut self, tuples: &[Vec<u32>], adam: &AdamConfig) -> f64 {
        let mut ws = crate::train::TrainWorkspace::default();
        self.train_step_with(tuples, adam, &mut ws)
    }

    /// Workspace-reusing gradient step: encoding, retained activations, the
    /// per-column loss buffers, and the backward ping-pong gradients all
    /// live in `ws`, so a training loop that reuses one workspace runs the
    /// whole step allocation-free at steady state (mirroring what
    /// `InferenceScratch` does for the sampling hot path).
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    pub fn train_step_with(
        &mut self,
        tuples: &[Vec<u32>],
        adam: &AdamConfig,
        ws: &mut crate::train::TrainWorkspace,
    ) -> f64 {
        // lint: allow(panic) - documented train_step contract: an empty batch has no gradient
        assert!(!tuples.is_empty(), "empty batch");
        // The quantized mirror captures the weights at prepare_relaxed time;
        // any further training invalidates it, so drop it rather than serve
        // stale relaxed answers.
        self.quant = None;
        let rows = tuples.len();
        let n = self.num_columns();
        let depth = self.hidden.len();

        // Encode the batch into the reused input buffer.
        ws.input.resize(rows, self.spec.total_input());
        ws.input.fill_zero();
        for (r, tuple) in tuples.iter().enumerate() {
            debug_assert_eq!(tuple.len(), n, "tuple width mismatch");
            let row = ws.input.row_mut(r);
            for (col, &id) in tuple.iter().enumerate() {
                self.encode_slot(col, id, row);
            }
        }

        // Forward pass, retaining pre- and post-activations per layer.
        ws.pre_acts.resize_with(depth, || Matrix::zeros(0, 0));
        ws.acts.resize_with(depth, || Matrix::zeros(0, 0));
        for i in 0..depth {
            if i == 0 {
                self.hidden[i].forward_into(&ws.input, &mut ws.pre_acts[i]);
            } else {
                let (acts, pre_acts) = (&ws.acts, &mut ws.pre_acts);
                self.hidden[i].forward_into(&acts[i - 1], &mut pre_acts[i]);
            }
            let pre = &ws.pre_acts[i];
            ws.acts[i].resize(pre.rows(), pre.cols());
            ws.acts[i].data_mut().copy_from_slice(pre.data());
            self.relu.forward_inplace(&mut ws.acts[i]);
        }
        self.output.forward_into(&ws.acts[depth - 1], &mut ws.trunk_out);

        // Per-column losses and the gradient w.r.t. the trunk output.
        let mut total_loss = 0.0f64;
        ws.d_trunk.resize(rows, self.spec.total_output());
        ws.d_trunk.fill_zero();
        for col in 0..n {
            ws.targets.clear();
            ws.targets.extend(tuples.iter().map(|t| t[col] as usize));
            let lo = self.output_offsets[col];
            let hi = self.output_offsets[col + 1];
            ws.block.resize(rows, hi - lo);
            for r in 0..rows {
                ws.block.row_mut(r).copy_from_slice(&ws.trunk_out.row(r)[lo..hi]);
            }
            match self.output_kinds[col] {
                OutputKind::Direct => {
                    total_loss += cross_entropy_grad_into(&ws.block, &ws.targets, &mut ws.grad_logits);
                    for r in 0..rows {
                        ws.d_trunk.row_mut(r)[lo..hi].copy_from_slice(ws.grad_logits.row(r));
                    }
                }
                OutputKind::EmbeddingReuse => {
                    // lint: allow(panic) - embeddings[col] is Some for every EmbeddingReuse output by construction in new()
                    let emb = self.embeddings[col].as_mut().expect("embedding present");
                    emb.decode_logits_into(&ws.block, &mut ws.logits);
                    total_loss += cross_entropy_grad_into(&ws.logits, &ws.targets, &mut ws.grad_logits);
                    emb.backward_decode_into(&ws.block, &ws.grad_logits, &mut ws.d_block, &mut ws.d_table);
                    for r in 0..rows {
                        ws.d_trunk.row_mut(r)[lo..hi].copy_from_slice(ws.d_block.row(r));
                    }
                }
            }
        }

        // Back-propagate through the trunk, ping-ponging between the two
        // reused gradient buffers.
        self.output.backward_into(&ws.acts[depth - 1], &ws.d_trunk, &mut ws.grad_a, &mut ws.dw);
        let mut current_is_a = true;
        for i in (0..depth).rev() {
            let (cur, next) =
                if current_is_a { (&mut ws.grad_a, &mut ws.grad_b) } else { (&mut ws.grad_b, &mut ws.grad_a) };
            self.relu.backward_inplace(&ws.pre_acts[i], cur);
            if i == 0 {
                self.hidden[i].backward_into(&ws.input, cur, next, &mut ws.dw);
            } else {
                self.hidden[i].backward_into(&ws.acts[i - 1], cur, next, &mut ws.dw);
            }
            current_is_a = !current_is_a;
        }
        let input_grad = if current_is_a { &ws.grad_a } else { &ws.grad_b };

        // Input-encoding gradients only exist for embedding-encoded columns.
        for col in 0..n {
            if let ColumnEncoding::Embedding { .. } = self.encodings[col] {
                let off = self.input_offsets[col];
                let width = self.spec.input_widths[col];
                ws.targets.clear();
                ws.targets.extend(tuples.iter().map(|t| t[col] as usize));
                ws.block_grad.resize(rows, width);
                for r in 0..rows {
                    ws.block_grad.row_mut(r).copy_from_slice(&input_grad.row(r)[off..off + width]);
                }
                // lint: allow(panic) - embeddings[col] is Some for every Embedding column by construction in new()
                let emb = self.embeddings[col].as_mut().expect("embedding present");
                emb.backward(&ws.targets, &ws.block_grad);
            }
        }

        // Parameter update.
        for layer in &mut self.hidden {
            layer.adam_step(adam);
            layer.zero_grad();
        }
        self.output.adam_step(adam);
        self.output.zero_grad();
        for emb in self.embeddings.iter_mut().flatten() {
            emb.adam_step(adam);
            emb.zero_grad();
        }

        total_loss
    }

    /// Per-tuple log-likelihood in nats, computed in a single forward pass.
    ///
    /// Runs through a local workspace: one trunk pass, then one output
    /// *block* per column (log-softmaxed in place), so no per-column
    /// matrices are allocated.
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    pub fn log_likelihood_batch(&self, tuples: &[Vec<u32>]) -> Vec<f64> {
        if tuples.is_empty() {
            return Vec::new();
        }
        let input = self.encode_input(tuples);
        let mut ws = naru_nn::Workspace::new();
        let h = self.forward_hidden_ws(&input, &mut ws);
        let mut ll = vec![0.0f64; tuples.len()];
        for col in 0..self.num_columns() {
            let lo = self.output_offsets[col];
            let hi = self.output_offsets[col + 1];
            {
                let (hidden, block) = ws.pair_mut(h, 2);
                self.output.forward_block_into(hidden, lo..hi, block);
            }
            let logit_buf = match self.output_kinds[col] {
                OutputKind::Direct => 2,
                OutputKind::EmbeddingReuse => {
                    // lint: allow(panic) - embeddings[col] is Some for every EmbeddingReuse output by construction in new()
                    let emb = self.embeddings[col].as_ref().expect("embedding present");
                    let (block, logits) = ws.pair_mut(2, 3);
                    emb.decode_logits_into(block, logits);
                    3
                }
            };
            let log_probs = ws.buf_mut(logit_buf);
            naru_tensor::log_softmax_rows_inplace(log_probs);
            for (t, tuple) in tuples.iter().enumerate() {
                ll[t] += log_probs.get(t, tuple[col] as usize) as f64;
            }
        }
        ll
    }
}

impl ConditionalDensity for MadeModel {
    fn num_columns(&self) -> usize {
        self.domain_sizes.len()
    }

    fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    /// Builds the quantized inference mirror: per-row i8 copies of the
    /// hidden stack, the output layer, and every embedding-reuse decode
    /// table. Input-side embedding *lookups* stay exact f32. Quantization
    /// preserves exact zeros, so the MADE masks survive the mirror and the
    /// relaxed walk keeps the autoregressive property bit-exactly.
    fn prepare_relaxed(&mut self) {
        let hidden = self.hidden.iter().map(QuantLinear::from_linear).collect();
        let output = QuantLinear::from_linear(&self.output);
        let decoders = self
            .output_kinds
            .iter()
            .zip(self.embeddings.iter())
            .map(|(kind, emb)| match (kind, emb) {
                (OutputKind::EmbeddingReuse, Some(emb)) => Some(QuantDecoder::from_embedding(emb)),
                _ => None,
            })
            .collect();
        self.quant = Some(QuantModel { hidden, output, decoders });
    }

    fn supports_relaxed(&self) -> bool {
        self.quant.is_some()
    }

    fn conditionals(&self, tuples: &[Vec<u32>], col: usize) -> Matrix {
        let input = self.encode_input(tuples);
        let trunk_out = self.forward_trunk(&input);
        let logits = self.logits_for_column(&trunk_out, col);
        naru_tensor::softmax_rows(&logits)
    }

    /// The zero-allocation hot path behind progressive sampling: reuses the
    /// incrementally-encoded input batch and the workspace activation
    /// buffers, and computes only column `col`'s output block instead of the
    /// whole output layer.
    // lint: allow_fn(index) - indices are bounded by the model shape fixed in new(); the autoregressive kernels keep direct indexing
    fn conditionals_into(
        &self,
        tuples: &[u32],
        num_cols: usize,
        col: usize,
        out: &mut Matrix,
        scratch: &mut InferenceScratch,
    ) {
        // lint: allow(panic) - shape contract shared with the sampler: callers pass width-checked tuples
        assert_eq!(num_cols, self.num_columns(), "tuple width mismatch");
        let rows = tuples.len().checked_div(num_cols).unwrap_or(0);
        self.encode_prefix_into(tuples, rows, col, scratch);
        if scratch.relaxed {
            if let Some(quant) = &self.quant {
                let h = self.forward_hidden_ws_quant(quant, &scratch.enc, &mut scratch.nn);
                let lo = self.output_offsets[col];
                let hi = self.output_offsets[col + 1];
                match self.output_kinds[col] {
                    OutputKind::Direct => {
                        quant.output.forward_block_into(scratch.nn.buf(h), lo..hi, out);
                    }
                    OutputKind::EmbeddingReuse => {
                        // lint: allow(panic) - decoders[col] is Some for every EmbeddingReuse output by construction in prepare_relaxed()
                        let decoder = quant.decoders[col].as_ref().expect("quant decoder present");
                        {
                            let (hidden, block) = scratch.nn.pair_mut(h, 2);
                            quant.output.forward_block_into(hidden, lo..hi, block);
                        }
                        decoder.decode_logits_into(scratch.nn.buf(2), out);
                    }
                }
                naru_tensor::softmax_rows_inplace(out);
                return;
            }
        }
        let h = self.forward_hidden_ws(&scratch.enc, &mut scratch.nn);
        let lo = self.output_offsets[col];
        let hi = self.output_offsets[col + 1];
        match self.output_kinds[col] {
            OutputKind::Direct => {
                self.output.forward_block_into(scratch.nn.buf(h), lo..hi, out);
            }
            OutputKind::EmbeddingReuse => {
                // lint: allow(panic) - embeddings[col] is Some for every EmbeddingReuse output by construction in new()
                let emb = self.embeddings[col].as_ref().expect("embedding present");
                {
                    let (hidden, block) = scratch.nn.pair_mut(h, 2);
                    self.output.forward_block_into(hidden, lo..hi, block);
                }
                emb.decode_logits_into(scratch.nn.buf(2), out);
            }
        }
        naru_tensor::softmax_rows_inplace(out);
    }

    fn log_likelihood(&self, tuples: &[Vec<u32>]) -> Vec<f64> {
        self.log_likelihood_batch(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples_from(table: &[[u32; 3]]) -> Vec<Vec<u32>> {
        table.iter().map(|row| row.to_vec()).collect()
    }

    #[test]
    fn model_builds_with_mixed_encodings() {
        let config = ModelConfig {
            hidden_sizes: vec![32, 16],
            encoding: EncodingPolicy { one_hot_threshold: 8, embedding_dim: 4, prefer_binary_for_large: false },
            embedding_reuse: true,
            seed: 1,
        };
        let model = MadeModel::new(&[4, 100, 2], &config);
        assert_eq!(model.encodings()[0], ColumnEncoding::OneHot);
        assert_eq!(model.encodings()[1], ColumnEncoding::Embedding { dim: 4 });
        assert_eq!(model.output_kinds[1], OutputKind::EmbeddingReuse);
        assert!(model.param_count() > 0);
        assert_eq!(model.size_bytes(), model.param_count() * 4);
    }

    #[test]
    fn conditionals_are_distributions() {
        let model = MadeModel::new(&[3, 5, 4], &ModelConfig::tiny());
        let tuples = tuples_from(&[[0, 1, 2], [2, 4, 0]]);
        for col in 0..3 {
            let probs = model.conditionals(&tuples, col);
            assert_eq!(probs.shape(), (2, [3, 5, 4][col]));
            for r in 0..2 {
                let s: f32 = probs.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "row {r} of col {col} sums to {s}");
                assert!(probs.row(r).iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn autoregressive_property_first_column_ignores_inputs() {
        // P(X_0) must be identical regardless of the values of other columns
        // *and* of column 0 itself (it is unconditional).
        let model = MadeModel::new(&[3, 5, 4], &ModelConfig::tiny());
        let a = model.conditionals(&[vec![0, 0, 0]], 0);
        let b = model.conditionals(&[vec![2, 4, 3]], 0);
        for i in 0..3 {
            assert!((a.get(0, i) - b.get(0, i)).abs() < 1e-6);
        }
    }

    #[test]
    fn autoregressive_property_later_columns_ignore_future_inputs() {
        // P(X_1 | x_0) must not change when columns 2+ change.
        let model = MadeModel::new(&[3, 5, 4], &ModelConfig::tiny());
        let a = model.conditionals(&[vec![1, 0, 0]], 1);
        let b = model.conditionals(&[vec![1, 4, 3]], 1);
        for i in 0..5 {
            assert!((a.get(0, i) - b.get(0, i)).abs() < 1e-6);
        }
        // ... but it must (generally) change when column 0 changes; with an
        // untrained random network the distributions differ almost surely.
        let c = model.conditionals(&[vec![2, 0, 0]], 1);
        let differs = (0..5).any(|i| (a.get(0, i) - c.get(0, i)).abs() > 1e-7);
        assert!(differs, "conditional does not depend on earlier column at all");
    }

    #[test]
    fn training_reduces_nll_on_skewed_data() {
        // A tiny, strongly-structured dataset: column 1 always equals
        // column 0, column 2 is constant. The model should learn this and
        // the NLL should drop well below the independent-uniform baseline.
        let mut data = Vec::new();
        for i in 0..4u32 {
            for _ in 0..8 {
                data.push(vec![i, i, 0]);
            }
        }
        let config = ModelConfig {
            hidden_sizes: vec![32, 32],
            encoding: EncodingPolicy::compact(8),
            embedding_reuse: true,
            seed: 3,
        };
        let mut model = MadeModel::new(&[4, 4, 3], &config);
        let adam = AdamConfig { lr: 5e-3, ..Default::default() };
        let first = model.train_step(&data, &adam);
        let mut last = first;
        for _ in 0..200 {
            last = model.train_step(&data, &adam);
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
        // The learned conditional P(X1 | X0=2) should concentrate on 2.
        let probs = model.conditionals(&[vec![2, 0, 0]], 1);
        assert!(probs.get(0, 2) > 0.7, "P(X1=2 | X0=2) = {}", probs.get(0, 2));
    }

    #[test]
    fn conditionals_into_matches_allocating_path() {
        // The workspace hot path (incremental prefix encoding + per-block
        // output) must agree with the reference allocating path for every
        // column, including after simulated dead-path compaction.
        let model = MadeModel::new(&[3, 70, 4], &ModelConfig::tiny());
        let mut tuples = tuples_from3(&[[1, 30, 2], [2, 69, 0], [0, 5, 3]]);
        let mut flat: Vec<u32> = tuples.iter().flatten().copied().collect();
        let mut scratch = InferenceScratch::new();
        let mut out = Matrix::zeros(0, 0);
        for col in 0..3 {
            let expected = model.conditionals(&tuples, col);
            model.conditionals_into(&flat, 3, col, &mut out, &mut scratch);
            assert_eq!(out.shape(), expected.shape());
            for i in 0..out.len() {
                assert!(
                    (out.data()[i] - expected.data()[i]).abs() < 1e-5,
                    "col {col} elem {i}: {} vs {}",
                    out.data()[i],
                    expected.data()[i]
                );
            }
            if col == 0 {
                // Drop the middle path, as the sampler does after a column:
                // the cached encodings must follow the compaction.
                scratch.compact_rows(&[0, 2]);
                tuples.remove(1);
                flat = tuples.iter().flatten().copied().collect();
            }
        }
    }

    fn tuples_from3(table: &[[u32; 3]]) -> Vec<Vec<u32>> {
        table.iter().map(|row| row.to_vec()).collect()
    }

    #[test]
    fn relaxed_conditionals_track_exact_within_tolerance() {
        // Mixed Direct + EmbeddingReuse outputs; the quantized mirror's
        // conditionals must stay close to the exact walk's and remain
        // proper distributions.
        let mut model = MadeModel::new(&[3, 70, 4], &ModelConfig::tiny());
        assert!(!model.supports_relaxed());
        model.prepare_relaxed();
        assert!(model.supports_relaxed());
        let tuples = tuples_from3(&[[1, 30, 2], [2, 69, 0]]);
        let flat: Vec<u32> = tuples.iter().flatten().copied().collect();
        let mut exact_scratch = InferenceScratch::new();
        let mut relaxed_scratch = InferenceScratch::new();
        relaxed_scratch.relaxed = true;
        let mut exact = Matrix::zeros(0, 0);
        let mut relaxed = Matrix::zeros(0, 0);
        for col in 0..3 {
            model.conditionals_into(&flat, 3, col, &mut exact, &mut exact_scratch);
            model.conditionals_into(&flat, 3, col, &mut relaxed, &mut relaxed_scratch);
            assert_eq!(relaxed.shape(), exact.shape());
            for i in 0..exact.len() {
                let delta = (exact.data()[i] - relaxed.data()[i]).abs();
                assert!(delta < 0.05, "col {col} elem {i}: delta {delta}");
            }
            for r in 0..relaxed.rows() {
                let s: f32 = relaxed.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "relaxed row {r} of col {col} sums to {s}");
            }
        }
    }

    #[test]
    fn training_drops_the_quant_mirror() {
        let mut model = MadeModel::new(&[4, 4, 3], &ModelConfig::tiny());
        model.prepare_relaxed();
        assert!(model.supports_relaxed());
        model.train_step(&[vec![0, 0, 0], vec![1, 1, 1]], &AdamConfig::default());
        assert!(!model.supports_relaxed(), "a trained-on model must not serve a stale mirror");
        // Without a mirror, a relaxed-flagged walk runs the exact path
        // bit-for-bit.
        let mut exact_scratch = InferenceScratch::new();
        let mut relaxed_scratch = InferenceScratch::new();
        relaxed_scratch.relaxed = true;
        let mut exact = Matrix::zeros(0, 0);
        let mut relaxed = Matrix::zeros(0, 0);
        model.conditionals_into(&[1, 2, 0], 3, 1, &mut exact, &mut exact_scratch);
        model.conditionals_into(&[1, 2, 0], 3, 1, &mut relaxed, &mut relaxed_scratch);
        assert_eq!(exact.data(), relaxed.data());
    }

    #[test]
    fn log_likelihood_matches_chain_rule_product() {
        let model = MadeModel::new(&[3, 4, 2], &ModelConfig::tiny());
        let tuples = tuples_from(&[[1, 3, 0], [2, 0, 1]]);
        let fast = model.log_likelihood_batch(&tuples);
        // Reference: multiply conditionals column by column.
        let mut reference = vec![0.0f64; tuples.len()];
        for col in 0..3 {
            let probs = model.conditionals(&tuples, col);
            for (t, tuple) in tuples.iter().enumerate() {
                reference[t] += (probs.get(t, tuple[col] as usize) as f64).ln();
            }
        }
        for (f, r) in fast.iter().zip(reference.iter()) {
            assert!((f - r).abs() < 1e-4, "{f} vs {r}");
        }
    }

    #[test]
    fn embedding_reuse_shrinks_model() {
        let domains = [4usize, 2000, 2];
        let mut config = ModelConfig::tiny();
        config.encoding = EncodingPolicy { one_hot_threshold: 8, embedding_dim: 16, prefer_binary_for_large: false };
        config.embedding_reuse = true;
        let with_reuse = MadeModel::new(&domains, &config);
        config.embedding_reuse = false;
        let without = MadeModel::new(&domains, &config);
        assert!(
            with_reuse.param_count() < without.param_count(),
            "embedding reuse should reduce parameters: {} vs {}",
            with_reuse.param_count(),
            without.param_count()
        );
    }
}
