//! Unsupervised maximum-likelihood training (§3.2, §4.1 of the paper).
//!
//! Training needs nothing but a stream of tuples from the relation — no
//! queries, no feedback. Each epoch shuffles the rows, walks them in
//! minibatches, and applies one Adam step per batch on the summed
//! per-column cross-entropy (the tuple negative log-likelihood). After each
//! epoch the trainer evaluates the average NLL in bits and, when the data
//! entropy is available, the entropy gap (§3.3) — the two quality curves of
//! Figure 5.

use std::time::Instant;

use naru_data::Table;
use naru_nn::optimizer::AdamConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use naru_tensor::Matrix;

use crate::columnwise::ColumnwiseModel;
use crate::density::{average_nll_bits, ConditionalDensity};
use crate::model::MadeModel;

/// Reusable buffers for one training step, the training-side counterpart of
/// [`InferenceScratch`](crate::density::InferenceScratch): the encoded
/// batch, retained per-layer activations, the per-column loss buffers, and
/// the backward ping-pong gradients. A training loop that holds one
/// workspace across batches (as [`train_model`] does) runs every step after
/// the first allocation-free.
#[derive(Debug, Default)]
pub struct TrainWorkspace {
    /// Encoded network input for the batch.
    pub(crate) input: Matrix,
    /// Pre-activation output of each hidden layer.
    pub(crate) pre_acts: Vec<Matrix>,
    /// Post-activation output of each hidden layer.
    pub(crate) acts: Vec<Matrix>,
    /// Output-layer activations.
    pub(crate) trunk_out: Matrix,
    /// Gradient w.r.t. the trunk output, assembled per column block.
    pub(crate) d_trunk: Matrix,
    /// Per-column integer targets (also reused for embedding ids).
    pub(crate) targets: Vec<usize>,
    /// One column's output block sliced out of `trunk_out`.
    pub(crate) block: Matrix,
    /// Decoded logits for embedding-reuse columns.
    pub(crate) logits: Matrix,
    /// Cross-entropy logit gradients.
    pub(crate) grad_logits: Matrix,
    /// Feature gradients of the embedding-reuse decode.
    pub(crate) d_block: Matrix,
    /// Embedding-table gradient scratch.
    pub(crate) d_table: Matrix,
    /// Backward activation-gradient ping-pong buffers.
    pub(crate) grad_a: Matrix,
    pub(crate) grad_b: Matrix,
    /// Weight-gradient scratch shared by every linear layer's backward.
    pub(crate) dw: Matrix,
    /// Input-embedding gradient slice.
    pub(crate) block_grad: Matrix,
}

impl TrainWorkspace {
    /// Creates an empty workspace; buffers materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A density model that can be trained by maximum likelihood.
pub trait TrainableDensity: ConditionalDensity {
    /// One gradient step on a batch; returns the batch NLL in nats/tuple.
    fn train_step(&mut self, tuples: &[Vec<u32>], adam: &AdamConfig) -> f64;

    /// Workspace-reusing variant of [`TrainableDensity::train_step`]. The
    /// default ignores the workspace (models without a buffer-reusing step
    /// keep working); [`MadeModel`] overrides it so training stops
    /// allocating per batch.
    fn train_step_ws(&mut self, tuples: &[Vec<u32>], adam: &AdamConfig, ws: &mut TrainWorkspace) -> f64 {
        let _ = ws;
        self.train_step(tuples, adam)
    }
}

impl TrainableDensity for MadeModel {
    fn train_step(&mut self, tuples: &[Vec<u32>], adam: &AdamConfig) -> f64 {
        MadeModel::train_step(self, tuples, adam)
    }

    fn train_step_ws(&mut self, tuples: &[Vec<u32>], adam: &AdamConfig, ws: &mut TrainWorkspace) -> f64 {
        MadeModel::train_step_with(self, tuples, adam, ws)
    }
}

impl TrainableDensity for ColumnwiseModel {
    fn train_step(&mut self, tuples: &[Vec<u32>], adam: &AdamConfig) -> f64 {
        ColumnwiseModel::train_step(self, tuples, adam)
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam settings.
    pub adam: AdamConfig,
    /// Shuffling / evaluation-subsample seed.
    pub seed: u64,
    /// Number of tuples used to evaluate NLL / entropy gap after each epoch
    /// (a uniform subsample; 0 disables per-epoch evaluation).
    pub eval_tuples: usize,
    /// Whether to compute the exact data entropy `H(P)` once before
    /// training (hashing all rows); enables the entropy-gap curve.
    pub compute_data_entropy: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 512,
            adam: AdamConfig { lr: 2e-3, ..Default::default() },
            seed: 0,
            eval_tuples: 2000,
            compute_data_entropy: true,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for tests and the `--quick` experiment scale.
    pub fn quick(epochs: usize) -> Self {
        Self { epochs, batch_size: 256, eval_tuples: 1000, ..Default::default() }
    }
}

/// Quality metrics recorded after each epoch.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches, in nats per tuple.
    pub train_loss_nats: f64,
    /// Average NLL on the evaluation subsample, in bits per tuple.
    pub eval_nll_bits: f64,
    /// Entropy gap in bits (`eval_nll_bits − H(P)`), when `H(P)` is known.
    pub entropy_gap_bits: Option<f64>,
    /// Wall-clock seconds spent in this epoch (training only).
    pub seconds: f64,
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch statistics, in order.
    pub epochs: Vec<EpochStats>,
    /// Exact data entropy in bits, if computed.
    pub data_entropy_bits: Option<f64>,
}

impl TrainReport {
    /// The entropy gap after the final epoch, if available.
    pub fn final_entropy_gap_bits(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.entropy_gap_bits)
    }
}

/// Extracts all rows of a table as id tuples.
pub fn table_tuples(table: &Table) -> Vec<Vec<u32>> {
    (0..table.num_rows()).map(|r| table.row(r)).collect()
}

/// Trains `model` on `table` for `config.epochs` passes, returning per-epoch
/// quality statistics. Works for both architectures (A and B).
// lint: allow_fn(index) - batch ranges are clamped to tuples.len() before slicing
pub fn train_model<M: TrainableDensity>(model: &mut M, table: &Table, config: &TrainConfig) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tuples = table_tuples(table);
    // lint: allow(panic) - documented training contract: an empty table has no distribution to fit
    assert!(!tuples.is_empty(), "cannot train on an empty table");

    let data_entropy_bits = if config.compute_data_entropy { Some(table.data_entropy_bits()) } else { None };

    // Fixed evaluation subsample (uniform over rows).
    let eval_set: Vec<Vec<u32>> = if config.eval_tuples > 0 {
        let idx = table.sample_row_indices(&mut rng, config.eval_tuples.min(tuples.len()));
        idx.into_iter().map(|r| tuples[r].clone()).collect()
    } else {
        Vec::new()
    };

    let mut order: Vec<usize> = (0..tuples.len()).collect();
    let mut epochs = Vec::with_capacity(config.epochs);
    // One workspace and one minibatch buffer for the whole run: every step
    // after the first reuses their allocations.
    let mut ws = TrainWorkspace::new();
    let mut batch: Vec<Vec<u32>> = Vec::new();
    for epoch in 1..=config.epochs {
        let start = Instant::now();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            batch.truncate(chunk.len());
            batch.resize_with(chunk.len(), Vec::new);
            for (dst, &i) in batch.iter_mut().zip(chunk) {
                dst.clear();
                dst.extend_from_slice(&tuples[i]);
            }
            loss_sum += model.train_step_ws(&batch, &config.adam, &mut ws);
            batches += 1;
        }
        let seconds = start.elapsed().as_secs_f64();

        let eval_nll_bits = if eval_set.is_empty() { f64::NAN } else { average_nll_bits(model, &eval_set) };
        let entropy_gap_bits = data_entropy_bits.map(|h| eval_nll_bits - h);
        epochs.push(EpochStats {
            epoch,
            train_loss_nats: loss_sum / batches.max(1) as f64,
            eval_nll_bits,
            entropy_gap_bits,
            seconds,
        });
    }

    TrainReport { epochs, data_entropy_bits }
}

/// Continues training an existing model on (possibly new) data — the
/// fine-tuning path used to absorb data shifts (§6.7.3, Table 8).
pub fn fine_tune<M: TrainableDensity>(
    model: &mut M,
    table: &Table,
    epochs: usize,
    config: &TrainConfig,
) -> TrainReport {
    let cfg = TrainConfig { epochs, ..config.clone() };
    train_model(model, table, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingPolicy;
    use crate::model::ModelConfig;
    use naru_data::synthetic::correlated_pair;

    fn tiny_model_config() -> ModelConfig {
        ModelConfig { hidden_sizes: vec![32, 32], encoding: EncodingPolicy::compact(8), embedding_reuse: true, seed: 1 }
    }

    #[test]
    fn training_improves_nll_and_reports_gap() {
        let table = correlated_pair(1500, 8, 0.9, 5);
        let mut model = MadeModel::new(table.schema().domain_sizes(), &tiny_model_config());
        let config = TrainConfig { epochs: 4, batch_size: 128, eval_tuples: 500, ..Default::default() };
        let report = train_model(&mut model, &table, &config);
        assert_eq!(report.epochs.len(), 4);
        let first = &report.epochs[0];
        let last = report.epochs.last().unwrap();
        assert!(last.eval_nll_bits <= first.eval_nll_bits + 0.1, "NLL should not get much worse");
        assert!(report.data_entropy_bits.is_some());
        // The gap must end up positive-ish and finite.
        let gap = report.final_entropy_gap_bits().unwrap();
        assert!(gap.is_finite());
        assert!(gap > -0.5, "gap {gap} suspiciously negative");
    }

    #[test]
    fn reused_workspace_matches_fresh_workspaces_bitwise() {
        // Two identically-seeded models, one stepped with a fresh workspace
        // per batch, one with a single reused workspace across batches of
        // *different sizes*: losses must agree bit-for-bit, proving the
        // workspace carries no state between steps.
        let table = correlated_pair(600, 6, 0.9, 4);
        let tuples = table_tuples(&table);
        let adam = crate::model::ModelConfig::tiny();
        let mut fresh = MadeModel::new(table.schema().domain_sizes(), &adam);
        let mut reused = MadeModel::new(table.schema().domain_sizes(), &adam);
        let cfg = naru_nn::optimizer::AdamConfig::default();
        let mut ws = TrainWorkspace::new();
        for (lo, hi) in [(0usize, 128usize), (128, 160), (160, 512), (512, 600)] {
            let batch = &tuples[lo..hi];
            let a = fresh.train_step(batch, &cfg);
            let b = reused.train_step_ws(batch, &cfg, &mut ws);
            assert_eq!(a, b, "loss diverged on batch {lo}..{hi}");
        }
        // And the resulting models answer identically.
        let probe = vec![tuples[0].clone(), tuples[1].clone()];
        for col in 0..table.num_columns() {
            assert_eq!(fresh.conditionals(&probe, col).data(), reused.conditionals(&probe, col).data());
        }
    }

    #[test]
    fn trained_model_beats_untrained_model() {
        let table = correlated_pair(1500, 8, 0.9, 6);
        let tuples = table_tuples(&table);
        let untrained = MadeModel::new(table.schema().domain_sizes(), &tiny_model_config());
        let untrained_nll = average_nll_bits(&untrained, &tuples[..500]);
        let mut model = MadeModel::new(table.schema().domain_sizes(), &tiny_model_config());
        let config = TrainConfig { epochs: 5, batch_size: 128, eval_tuples: 0, ..Default::default() };
        train_model(&mut model, &table, &config);
        let trained_nll = average_nll_bits(&model, &tuples[..500]);
        assert!(trained_nll < untrained_nll, "training should reduce NLL: {untrained_nll} -> {trained_nll}");
    }

    #[test]
    fn fine_tuning_continues_from_existing_weights() {
        let table = correlated_pair(800, 6, 0.9, 7);
        let mut model = MadeModel::new(table.schema().domain_sizes(), &tiny_model_config());
        let config = TrainConfig { epochs: 2, batch_size: 128, eval_tuples: 400, ..Default::default() };
        let before = train_model(&mut model, &table, &config);
        let after = fine_tune(&mut model, &table, 2, &config);
        let nll_before = before.epochs.last().unwrap().eval_nll_bits;
        let nll_after = after.epochs.last().unwrap().eval_nll_bits;
        assert!(nll_after <= nll_before + 0.2, "fine-tuning regressed: {nll_before} -> {nll_after}");
    }

    #[test]
    fn columnwise_model_trains_through_same_interface() {
        let table = correlated_pair(600, 5, 0.9, 8);
        let mut model = crate::columnwise::ColumnwiseModel::new(
            table.schema().domain_sizes(),
            &crate::columnwise::ColumnwiseConfig { hidden_sizes: vec![16], ..Default::default() },
        );
        let config = TrainConfig { epochs: 3, batch_size: 64, eval_tuples: 300, ..Default::default() };
        let report = train_model(&mut model, &table, &config);
        assert_eq!(report.epochs.len(), 3);
        assert!(report.epochs.last().unwrap().eval_nll_bits.is_finite());
    }
}
