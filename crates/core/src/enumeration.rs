//! Exact enumeration of a query region (§5 of the paper).
//!
//! When the region `R_1 × · · · × R_n` is small, the selectivity can be
//! computed exactly by summing the model's density over every point in the
//! region. The paper uses this only as a conceptual baseline — Table 6
//! shows the estimated latency of enumerating realistic regions exceeds a
//! thousand hours — but it is invaluable here as a correctness oracle for
//! progressive sampling on small joints, and it powers the
//! `sampling_vs_enumeration` bench.

use naru_query::ColumnConstraint;

use crate::density::ConditionalDensity;

/// Result of an exact enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EnumerationResult {
    /// The exact probability of the region under the model.
    pub selectivity: f64,
    /// Number of model points evaluated (region size up to the last
    /// filtered column).
    pub points_evaluated: u64,
}

/// Exactly sums the model density over the query region.
///
/// Returns `None` if the number of points to evaluate would exceed
/// `max_points` — callers should fall back to progressive sampling in that
/// case, which is precisely Naru's strategy.
// lint: allow_fn(index) - constraint width is asserted to equal num_columns; per-column indices are domain-bounded
pub fn enumerate_exact<D: ConditionalDensity + ?Sized>(
    density: &D,
    constraints: &[ColumnConstraint],
    max_points: u64,
) -> Option<EnumerationResult> {
    let n = density.num_columns();
    // lint: allow(panic) - documented enumeration contract: one constraint per column
    assert_eq!(constraints.len(), n, "one constraint per column required");
    let domains = density.domain_sizes();

    // Wildcard columns after the last filtered column marginalize to 1 and
    // can be skipped entirely; wildcards in the middle must be enumerated.
    let last_filtered = match constraints.iter().rposition(|c| !matches!(c, ColumnConstraint::Any)) {
        Some(i) => i,
        None => return Some(EnumerationResult { selectivity: 1.0, points_evaluated: 0 }),
    };

    let allowed: Vec<Vec<u32>> = (0..=last_filtered).map(|i| constraints[i].materialize(domains[i])).collect();
    if allowed.iter().any(Vec::is_empty) {
        return Some(EnumerationResult { selectivity: 0.0, points_evaluated: 0 });
    }
    let region: f64 = allowed.iter().map(|a| a.len() as f64).product();
    if region > max_points as f64 {
        return None;
    }

    // Level-by-level expansion: maintain all partial prefixes and their
    // probabilities, extending one column at a time. Each level issues one
    // batched conditional query, mirroring how the neural model is used.
    let mut prefixes: Vec<Vec<u32>> = vec![vec![0u32; n]];
    let mut probs: Vec<f64> = vec![1.0];
    let mut points: u64 = 0;

    for col in 0..=last_filtered {
        let conditionals = density.conditionals(&prefixes, col);
        let ids = &allowed[col];
        let mut next_prefixes = Vec::with_capacity(prefixes.len() * ids.len());
        let mut next_probs = Vec::with_capacity(prefixes.len() * ids.len());
        for (p, prefix) in prefixes.iter().enumerate() {
            let row = conditionals.row(p);
            for &id in ids {
                let pr = probs[p] * row[id as usize].max(0.0) as f64;
                points += 1;
                if pr == 0.0 && col < last_filtered {
                    // Zero-probability branches cannot recover; prune them.
                    continue;
                }
                let mut extended = prefix.clone();
                extended[col] = id;
                next_prefixes.push(extended);
                next_probs.push(pr);
            }
        }
        prefixes = next_prefixes;
        probs = next_probs;
        if prefixes.is_empty() {
            return Some(EnumerationResult { selectivity: 0.0, points_evaluated: points });
        }
    }

    Some(EnumerationResult { selectivity: probs.iter().sum::<f64>().clamp(0.0, 1.0), points_evaluated: points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::IndependentDensity;
    use crate::oracle::OracleDensity;
    use crate::sampler::{ProgressiveSampler, SamplerConfig};
    use naru_data::synthetic::correlated_pair;
    use naru_query::{count_matches, Predicate, Query};

    #[test]
    fn enumeration_matches_closed_form_on_independent_density() {
        let d = IndependentDensity::new(vec![vec![0.25, 0.75], vec![0.1, 0.2, 0.7]]);
        let q = Query::new(vec![Predicate::ge(0, 1), Predicate::le(1, 1)]);
        let res = enumerate_exact(&d, &q.constraints(2), 1000).unwrap();
        assert!((res.selectivity - 0.75 * 0.3).abs() < 1e-6);
        assert_eq!(res.points_evaluated, 1 + 2);
    }

    #[test]
    fn enumeration_matches_ground_truth_via_oracle() {
        let t = correlated_pair(1000, 6, 0.9, 11);
        let oracle = OracleDensity::new(&t);
        let q = Query::new(vec![Predicate::le(0, 3), Predicate::ge(1, 2)]);
        let truth = count_matches(&t, &q) as f64 / t.num_rows() as f64;
        let res = enumerate_exact(&oracle, &q.constraints(2), 10_000).unwrap();
        assert!((res.selectivity - truth).abs() < 1e-5, "{} vs {truth}", res.selectivity);
    }

    #[test]
    fn enumeration_refuses_oversized_regions() {
        let d = IndependentDensity::uniform(&[1000, 1000, 1000]);
        let q = Query::new(vec![Predicate::le(0, 999), Predicate::le(1, 999), Predicate::le(2, 999)]);
        assert!(enumerate_exact(&d, &q.constraints(3), 1_000_000).is_none());
    }

    #[test]
    fn unfiltered_query_needs_no_points() {
        let d = IndependentDensity::uniform(&[10, 10]);
        let res = enumerate_exact(&d, &[ColumnConstraint::Any, ColumnConstraint::Any], 10).unwrap();
        assert_eq!(res.selectivity, 1.0);
        assert_eq!(res.points_evaluated, 0);
    }

    #[test]
    fn progressive_sampling_agrees_with_enumeration() {
        // On a small joint the sampler (with enough paths) and exact
        // enumeration must agree closely — the paper's unbiasedness claim.
        let t = correlated_pair(2000, 5, 0.8, 13);
        let oracle = OracleDensity::new(&t);
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 1)]);
        let exact = enumerate_exact(&oracle, &q.constraints(2), 10_000).unwrap().selectivity;
        let sampled =
            ProgressiveSampler::new(SamplerConfig { num_samples: 2000, seed: 3 }).estimate(&oracle, &q.constraints(2));
        assert!((exact - sampled).abs() < 0.02, "exact {exact} vs sampled {sampled}");
    }
}
