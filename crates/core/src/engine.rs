//! The Engine/Session estimation API.
//!
//! Serving a trained estimator under concurrent traffic needs a clean split
//! between what is shared and what is per-thread:
//!
//! * an [`Engine`] owns the *immutable* trained artifact — a
//!   [`MadeModel`](crate::model::MadeModel) or any other
//!   [`ConditionalDensity`] — behind an `Arc`, so it is cheap to clone and
//!   safe to share across threads;
//! * a [`Session`] owns *all mutable state* of estimation — the sampler
//!   scratch (activation buffers, tuple buffers, incremental encodings),
//!   the constraint-compilation buffer, and the per-call sample-count /
//!   seed knobs — so steady-state estimation is allocation-free without
//!   any interior locking.
//!
//! Estimates are deterministic given the seed: two sessions over the same
//! engine, with the same knobs, produce bit-for-bit identical
//! [`Estimate::selectivity`] values for the same query, regardless of which
//! thread runs them.
//!
//! ```text
//! let engine = estimator.into_engine();          // Arc<the trained model>
//! std::thread::scope(|scope| {
//!     for _ in 0..workers {
//!         let mut session = engine.session();    // per-thread scratch
//!         scope.spawn(move || session.estimate_batch(&queries));
//!     }
//! });
//! ```

use std::sync::Arc;
use std::time::Instant;

use naru_query::{ColumnConstraint, Estimate, EstimateError, Provenance, Query};

use crate::density::ConditionalDensity;
use crate::sampler::{progressive_walk, progressive_walk_memo, PrefixMemo, SamplerScratch};
use crate::stats::TableStats;
use crate::tiered::{TierConfig, TieredSession};

/// A density shareable across threads — what an [`Engine`] holds.
pub type SharedDensity = Arc<dyn ConditionalDensity + Send + Sync>;

/// Numeric precision of a [`Session`]'s model walks.
///
/// `Relaxed` routes the network forward passes through the density's
/// quantized (per-row i8 weights, f32 accumulation) inference mirror when
/// one exists — faster, with a bounded accuracy delta asserted by the
/// relaxed-parity test tier — and tags answers
/// [`Provenance::Relaxed`]. On densities without a mirror (oracles,
/// baselines, a model trained after `Engine` construction) `Relaxed` is a
/// no-op: answers stay bit-exact with their ordinary provenance.
///
/// Independent of the per-session knob, setting the process-wide kernel
/// policy to [`naru_tensor::KernelPolicy::Quantized`] relaxes *every*
/// session the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Exact f32 forward passes; results are bit-identical to the reference
    /// walk. The default.
    #[default]
    Exact,
    /// Quantized forward passes where supported; answers tagged
    /// [`Provenance::Relaxed`].
    Relaxed,
}

/// The immutable half of the estimation API: a trained conditional density
/// plus the table metadata needed to turn selectivities into cardinalities.
///
/// `Engine` is `Clone` (the artifact lives behind an `Arc`) and `Send +
/// Sync`; spawn one [`Session`] per worker thread via [`Engine::session`].
///
/// An engine may additionally carry a [`TableStats`] sidecar (attached via
/// [`Engine::with_table_stats`], or automatically by
/// `NaruEstimator::into_engine` after training). The sidecar never changes
/// what [`Engine::session`] computes; it only enables the tiered fast paths
/// of [`Engine::tiered_session`].
#[derive(Clone)]
pub struct Engine {
    density: SharedDensity,
    num_rows: u64,
    default_samples: usize,
    default_seed: u64,
    table_stats: Option<Arc<TableStats>>,
    tier_config: TierConfig,
}

impl Engine {
    /// Wraps a density as an engine. `num_rows` is the row count of the
    /// modeled table (used to report estimated cardinalities).
    ///
    /// Construction is the point where the density's weights freeze for
    /// serving, so this is also where its relaxed-precision state (e.g.
    /// quantized weight mirrors) is built — see
    /// [`ConditionalDensity::prepare_relaxed`].
    pub fn new<D: ConditionalDensity + Send + Sync + 'static>(mut density: D, num_rows: u64) -> Self {
        density.prepare_relaxed();
        Self::from_arc(Arc::new(density), num_rows)
    }

    /// Wraps an already-shared density (e.g. one `Arc` serving several
    /// engines with different default knobs).
    pub fn from_arc(density: SharedDensity, num_rows: u64) -> Self {
        Self {
            density,
            num_rows,
            default_samples: 2000,
            default_seed: 0,
            table_stats: None,
            tier_config: TierConfig::default(),
        }
    }

    /// Sets the default progressive-sample count inherited by new sessions.
    pub fn with_samples(mut self, num_samples: usize) -> Self {
        self.default_samples = num_samples;
        self
    }

    /// Sets the default RNG seed inherited by new sessions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.default_seed = seed;
        self
    }

    /// Attaches a [`TableStats`] sidecar, enabling the tier-0/tier-1 fast
    /// paths of [`Engine::tiered_session`].
    pub fn with_table_stats(self, stats: TableStats) -> Self {
        self.with_shared_table_stats(Arc::new(stats))
    }

    /// Attaches an already-shared [`TableStats`] sidecar.
    pub fn with_shared_table_stats(mut self, stats: Arc<TableStats>) -> Self {
        self.table_stats = Some(stats);
        self
    }

    /// Drops the statistics sidecar: tiered sessions from this engine run
    /// every query through the model (tier 2 only). Useful as the
    /// all-model baseline in benchmarks.
    pub fn without_table_stats(mut self) -> Self {
        self.table_stats = None;
        self
    }

    /// Sets the tier-routing configuration inherited by tiered sessions.
    pub fn with_tier_config(mut self, config: TierConfig) -> Self {
        self.tier_config = config;
        self
    }

    /// Opens a new session: a clone of the shared artifact plus fresh
    /// (empty) scratch. Cheap; buffers materialize on the first estimate.
    pub fn session(&self) -> Session {
        Session {
            density: Arc::clone(&self.density),
            num_rows: self.num_rows,
            num_samples: self.default_samples,
            seed: self.default_seed,
            precision: Precision::Exact,
            scratch: SamplerScratch::default(),
            constraints: Vec::new(),
            memo: PrefixMemo::default(),
        }
    }

    /// Opens a tiered session: tier-0 exact statistics and tier-1 sketches
    /// answer the easy queries, the model session answers the rest. On an
    /// engine without a [`TableStats`] sidecar this is a pure tier-2
    /// passthrough, bit-identical to [`Engine::session`].
    pub fn tiered_session(&self) -> TieredSession {
        TieredSession::new(self.session(), self.table_stats.clone(), self.tier_config.clone())
    }

    /// The shared density.
    pub fn density(&self) -> &(dyn ConditionalDensity + Send + Sync) {
        &*self.density
    }

    /// The statistics sidecar, when one is attached.
    pub fn table_stats(&self) -> Option<&Arc<TableStats>> {
        self.table_stats.as_ref()
    }

    /// The tier-routing configuration tiered sessions inherit.
    pub fn tier_config(&self) -> &TierConfig {
        &self.tier_config
    }

    /// Row count of the modeled table.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Number of modeled columns.
    pub fn num_columns(&self) -> usize {
        self.density.num_columns()
    }

    /// Domain sizes of the modeled columns.
    pub fn domain_sizes(&self) -> &[usize] {
        self.density.domain_sizes()
    }
}

/// The mutable half of the estimation API: one per worker thread.
///
/// A session owns every buffer progressive sampling touches, so repeated
/// estimates are allocation-free at steady state and never contend on a
/// lock. Sessions are `Send`: move one into each worker thread. Estimation
/// takes `&mut self`, so a single session cannot be used from two threads
/// at once — to serve concurrently, open one session per thread instead of
/// wrapping one in a lock.
pub struct Session {
    density: SharedDensity,
    num_rows: u64,
    num_samples: usize,
    seed: u64,
    precision: Precision,
    scratch: SamplerScratch,
    /// Reused constraint-compilation buffer (`try_constraints_into`).
    constraints: Vec<naru_query::ColumnConstraint>,
    /// Partial-walk checkpoints reused across a batch by queries sharing a
    /// column prefix (self-invalidating on seed/sample-count changes).
    memo: PrefixMemo,
}

impl Session {
    /// Number of progressive-sampling paths per estimate.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Changes the per-call sample count (Naru-1000 vs Naru-2000 …) without
    /// rebuilding anything — the scratch buffers resize lazily.
    pub fn set_num_samples(&mut self, num_samples: usize) {
        self.num_samples = num_samples;
    }

    /// The RNG seed; estimates are deterministic given it.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Changes the RNG seed used by subsequent estimates.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The session's precision mode.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Changes the precision mode of subsequent estimates. The batch path's
    /// prefix memo is keyed on the effective mode, so flipping precision
    /// never resumes an exact walk from relaxed state or vice versa.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// Builder form of [`Session::set_precision`].
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Row count of the modeled table.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Number of modeled columns.
    pub fn num_columns(&self) -> usize {
        self.density.num_columns()
    }

    /// Domain sizes of the modeled columns.
    pub fn domain_sizes(&self) -> &[usize] {
        self.density.domain_sizes()
    }

    /// Estimates one query with the session's current knobs.
    pub fn estimate(&mut self, query: &Query) -> Result<Estimate, EstimateError> {
        self.estimate_with_samples(query, self.num_samples)
    }

    /// Estimates one query with an explicit sample count, leaving the
    /// session's default untouched.
    pub fn estimate_with_samples(&mut self, query: &Query, num_samples: usize) -> Result<Estimate, EstimateError> {
        estimate_with_scratch(
            &*self.density,
            self.num_rows,
            query,
            num_samples,
            self.seed,
            self.precision,
            &mut self.scratch,
            &mut self.constraints,
        )
    }

    /// Estimates a batch of queries, one result per query in order, reusing
    /// the session scratch across the whole batch.
    ///
    /// Beyond scratch reuse, the batch path memoizes partial walks: queries
    /// are compiled up front and processed in an order that places shared
    /// column prefixes next to each other, so a query whose first `k`
    /// compiled constraints match its predecessor resumes the sampler after
    /// column `k` instead of re-running those forward passes (identical
    /// queries reduce to a single walk). Every individual result is
    /// bit-for-bit identical to what [`Session::estimate`] returns for that
    /// query, and results come back in the caller's order.
    // lint: allow_fn(index) - parallel vectors are allocated to queries.len() above; enumerate-derived indices stay in bounds
    pub fn estimate_batch(&mut self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        let n = self.density.num_columns();
        // Same per-query error semantics as the sequential path: a
        // degenerate domain fails every query identically.
        if let Some(column) = self.density.domain_sizes().iter().position(|&d| d == 0) {
            return queries.iter().map(|_| Err(EstimateError::EmptyDomain { column })).collect();
        }
        let mut results: Vec<Option<Result<Estimate, EstimateError>>> = vec![None; queries.len()];
        let mut compiled: Vec<Option<Vec<ColumnConstraint>>> = vec![None; queries.len()];
        let mut order: Vec<usize> = Vec::with_capacity(queries.len());
        for (i, query) in queries.iter().enumerate() {
            match query.try_constraints(n) {
                Ok(constraints) => {
                    compiled[i] = Some(constraints);
                    order.push(i);
                }
                Err(err) => results[i] = Some(Err(err)),
            }
        }
        // Lexicographic order over compiled constraint vectors clusters
        // shared prefixes (the sort is stable, so ties keep caller order
        // and the whole batch stays deterministic).
        order.sort_by(|&a, &b| compiled[a].cmp(&compiled[b]));
        let relaxed = effective_relaxed(&*self.density, self.precision);
        for &i in &order {
            // lint: allow(panic) - compile loop above fills compiled[i] for every index before this pass
            let constraints = compiled[i].as_ref().expect("sorted indices are compiled");
            let start = Instant::now();
            let walk = progressive_walk_memo(
                &*self.density,
                constraints,
                self.num_samples,
                self.seed,
                &mut self.scratch,
                &mut self.memo,
                relaxed,
            );
            let live = self.num_samples.max(1) - walk.dead_paths;
            let mut estimate = Estimate::sampled(walk.selectivity, self.num_rows, live, start.elapsed());
            if relaxed {
                estimate = estimate.with_provenance(Provenance::Relaxed);
            }
            results[i] = Some(Ok(estimate));
        }
        // lint: allow(panic) - the walk loop assigns results[i] for every query index
        results.into_iter().map(|r| r.expect("every query is answered")).collect()
    }

    /// Drops the batch path's memoized partial walks (they are also
    /// self-invalidating; this just releases their memory).
    pub fn clear_memo(&mut self) {
        self.memo.clear();
    }
}

/// Whether a walk at `precision` actually runs relaxed: the caller asks for
/// it (or the process-wide [`naru_tensor::KernelPolicy::Quantized`] policy
/// does) *and* the density can serve it. Computed per estimate — never
/// cached — so [`Provenance::Relaxed`] tagging stays honest even when the
/// global policy flips between calls.
pub(crate) fn effective_relaxed<D: ConditionalDensity + ?Sized>(density: &D, precision: Precision) -> bool {
    (precision == Precision::Relaxed || naru_tensor::kernel_policy() == naru_tensor::KernelPolicy::Quantized)
        && density.supports_relaxed()
}

/// The shared fallible-estimation routine: validates the query, runs the
/// progressive walk through the caller's scratch, and packages the rich
/// [`Estimate`]. Used by [`Session`] and by the `SelectivityEstimator`
/// wrappers in [`crate::estimator`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn estimate_with_scratch<D: ConditionalDensity + ?Sized>(
    density: &D,
    num_rows: u64,
    query: &Query,
    num_samples: usize,
    seed: u64,
    precision: Precision,
    scratch: &mut SamplerScratch,
    constraints: &mut Vec<naru_query::ColumnConstraint>,
) -> Result<Estimate, EstimateError> {
    let start = Instant::now();
    if let Some(column) = density.domain_sizes().iter().position(|&d| d == 0) {
        return Err(EstimateError::EmptyDomain { column });
    }
    query.try_constraints_into(density.num_columns(), constraints)?;
    let relaxed = effective_relaxed(density, precision);
    let walk = progressive_walk(density, constraints, num_samples, seed, scratch, relaxed);
    let live = num_samples.max(1) - walk.dead_paths;
    let mut estimate = Estimate::sampled(walk.selectivity, num_rows, live, start.elapsed());
    if relaxed {
        estimate = estimate.with_provenance(Provenance::Relaxed);
    }
    Ok(estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::IndependentDensity;
    use crate::oracle::OracleDensity;
    use naru_data::synthetic::correlated_pair;
    use naru_query::Predicate;

    fn oracle_engine() -> (Engine, naru_data::Table) {
        let t = correlated_pair(1200, 6, 0.9, 3);
        let engine = Engine::new(OracleDensity::new(&t), t.num_rows() as u64).with_samples(200);
        (engine, t)
    }

    #[test]
    fn session_estimates_match_progressive_sampler() {
        let (engine, t) = oracle_engine();
        let mut session = engine.session();
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 1)]);
        let est = session.estimate(&q).unwrap();

        let sampler =
            crate::sampler::ProgressiveSampler::new(crate::sampler::SamplerConfig { num_samples: 200, seed: 0 });
        let oracle = OracleDensity::new(&t);
        let reference = sampler.estimate_detailed(&oracle, &q.constraints(2));
        assert_eq!(est.selectivity, reference.selectivity);
        assert_eq!(est.live_paths, Some(200 - reference.dead_paths));
        assert!((est.estimated_rows - est.selectivity * t.num_rows() as f64).abs() < 1e-9);
    }

    #[test]
    fn sessions_are_independent_and_deterministic() {
        let (engine, _) = oracle_engine();
        let q1 = Query::new(vec![Predicate::le(0, 3)]);
        let q2 = Query::new(vec![Predicate::eq(0, 0), Predicate::eq(1, 0)]);

        let mut a = engine.session();
        let mut b = engine.session();
        // Interleaved use of two sessions over the same engine must agree
        // with a fresh session answering each query in isolation.
        let a1 = a.estimate(&q1).unwrap().selectivity;
        let b2 = b.estimate(&q2).unwrap().selectivity;
        let a2 = a.estimate(&q2).unwrap().selectivity;
        let b1 = b.estimate(&q1).unwrap().selectivity;
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert_eq!(engine.session().estimate(&q1).unwrap().selectivity, a1);
    }

    #[test]
    fn batch_matches_sequential() {
        let (engine, _) = oracle_engine();
        let queries = vec![
            Query::new(vec![Predicate::le(0, 2)]),
            Query::all(),
            Query::new(vec![Predicate::eq(0, 1), Predicate::ge(1, 3)]),
        ];
        let batch = engine.session().estimate_batch(&queries);
        let mut session = engine.session();
        for (q, b) in queries.iter().zip(&batch) {
            let s = session.estimate(q).unwrap();
            assert_eq!(s.selectivity, b.as_ref().unwrap().selectivity);
        }
    }

    #[test]
    fn per_call_sample_count_changes_without_rebuild() {
        let (engine, _) = oracle_engine();
        let mut session = engine.session();
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 2)]);
        let at_200 = session.estimate(&q).unwrap();
        let at_50 = session.estimate_with_samples(&q, 50).unwrap();
        assert_eq!(at_50.live_paths.map(|l| l <= 50), Some(true));
        // The default knob is untouched; repeating the default matches.
        assert_eq!(session.estimate(&q).unwrap().selectivity, at_200.selectivity);
        session.set_num_samples(50);
        assert_eq!(session.estimate(&q).unwrap().selectivity, at_50.selectivity);
    }

    #[test]
    fn out_of_range_column_is_a_typed_error() {
        let (engine, _) = oracle_engine();
        let q = Query::new(vec![Predicate::eq(17, 0)]);
        assert_eq!(engine.session().estimate(&q), Err(EstimateError::ColumnOutOfRange { column: 17, num_columns: 2 }));
    }

    #[test]
    fn empty_domain_is_a_typed_error() {
        let engine = Engine::new(IndependentDensity::new(vec![vec![0.5, 0.5], vec![]]), 10);
        let q = Query::new(vec![Predicate::eq(0, 0)]);
        assert_eq!(engine.session().estimate(&q), Err(EstimateError::EmptyDomain { column: 1 }));
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let (engine, _) = oracle_engine();
        let q = Query::new(vec![Predicate::le(0, 2), Predicate::ge(1, 1)]);
        let reference = engine.session().estimate(&q).unwrap().selectivity;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = engine.clone();
                let q = q.clone();
                scope.spawn(move || {
                    let got = engine.session().estimate(&q).unwrap().selectivity;
                    assert_eq!(got, reference);
                });
            }
        });
    }
}
