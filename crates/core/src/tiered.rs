//! The tiered estimation pipeline: exact statistics, then sketches, then
//! the model.
//!
//! Production traffic is skewed and repetitive, and much of it is *easy*:
//! unconstrained probes, single-column points and ranges, predicates whose
//! answer per-column statistics already prove. Running Naru's progressive
//! sampler — one network forward pass per column — on such queries wastes
//! tens of milliseconds to recompute what a catalog lookup knows. This is
//! the classical tiered design (cheap summaries first, learned model for
//! the hard residual), in the spirit of pairing compact sketches with a
//! deep estimator (arXiv:1904.08223):
//!
//! * **Tier 0 — exact statistics.** [`TableStats::exact_cardinality`]
//!   answers when the stored per-column summaries *prove* the count:
//!   unconstrained or full-domain queries, provably-empty constraints, and
//!   single-column predicates on columns whose exact value counts are
//!   stored. Bit-exact by construction, microseconds, no model.
//! * **Tier 1 — sketches.** Per-column MCV + equi-depth histograms
//!   combined under independence ([`TableStats::sketch_selectivity`]).
//!   Approximate, so it is gated by [`TierConfig`]: a query is eligible
//!   only while the configured q-error budget covers the independence
//!   error that grows with the number of filtered columns.
//! * **Tier 2 — the model.** Everything else runs the unchanged
//!   `Session::estimate` progressive-sampling path.
//!
//! Each answer is tagged with its [`Provenance`] so serving metrics and
//! benchmarks can attribute latency per tier.

use std::sync::Arc;
use std::time::Instant;

use naru_query::{ColumnConstraint, Estimate, EstimateError, Provenance, Query};

use crate::engine::Session;
use crate::stats::TableStats;

/// Routing knobs for [`TieredSession`].
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Multiplicative error budget a tier-1 answer may spend. Tier 1 is
    /// consulted only while its modeled worst-case error stays inside this
    /// budget; set below 1.0 to disable tier 1 entirely.
    pub tier1_qerror_budget: f64,
    /// Modeled per-filtered-column error factor of the independence
    /// assumption: a query filtering `k` columns is routed to tier 1 only
    /// if `factor^k <= budget`. With the defaults (factor 2, budget 4)
    /// tier 1 takes queries filtering at most two columns.
    pub tier1_column_factor: f64,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self { tier1_qerror_budget: 4.0, tier1_column_factor: 2.0 }
    }
}

impl TierConfig {
    /// Whether tier 1 may answer a query filtering `filtered` columns.
    pub fn tier1_allows(&self, filtered: usize) -> bool {
        self.tier1_qerror_budget >= 1.0 && self.tier1_column_factor.powi(filtered as i32) <= self.tier1_qerror_budget
    }
}

/// How far [`TieredSession::estimate_degraded`] may cut quality when a
/// request's deadline budget (or the server's backlog) cannot afford the
/// full model walk.
///
/// Both rungs first try the normal tier-0/tier-1 fast paths — when the
/// statistics *prove* the answer, or the sketch is within its configured
/// budget anyway, degradation changes nothing and the estimate keeps its
/// ordinary provenance. Only when the routing actually cut quality is the
/// answer tagged [`Provenance::Degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Run the model walk with this (reduced) number of progressive-sample
    /// paths instead of the session's configured count. The middle rung of
    /// the degradation ladder: still model-quality in shape, cheaper and
    /// noisier. Clamped to at least 1.
    ReducedSamples(usize),
    /// Skip the model entirely and answer from the statistics sidecar's
    /// histogram sketches, ignoring the tier-1 q-error budget gate. On a
    /// session without statistics this falls back to a model walk with
    /// `fallback_samples` paths (clamped to at least 1) — the cheapest
    /// model answer available.
    SketchOnly {
        /// Sample count of the stats-less fallback walk.
        fallback_samples: usize,
    },
}

/// A [`Session`](crate::Session) wrapped with the tier-0/tier-1 fast paths.
///
/// Built by `Engine::tiered_session`. Without a [`TableStats`] sidecar the
/// wrapper is a pure passthrough to the model session — every answer (and
/// every error) is bit-identical to the plain session's.
pub struct TieredSession {
    session: Session,
    stats: Option<Arc<TableStats>>,
    config: TierConfig,
    /// Reused constraint-compilation buffer for the fast-path check.
    constraints: Vec<ColumnConstraint>,
}

impl TieredSession {
    pub(crate) fn new(session: Session, stats: Option<Arc<TableStats>>, config: TierConfig) -> Self {
        Self { session, stats, config, constraints: Vec::new() }
    }

    /// The wrapped model session (tier 2).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the wrapped model session, e.g. to adjust its
    /// sample-count or seed knobs.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// The wrapped session's precision mode. Tier-0/tier-1 fast-path
    /// answers are closed-form and unaffected by precision; only tier-2
    /// model walks relax.
    pub fn precision(&self) -> crate::Precision {
        self.session.precision()
    }

    /// Changes the precision mode of subsequent tier-2 model walks.
    pub fn set_precision(&mut self, precision: crate::Precision) {
        self.session.set_precision(precision);
    }

    /// Builder form of [`TieredSession::set_precision`].
    pub fn with_precision(mut self, precision: crate::Precision) -> Self {
        self.session.set_precision(precision);
        self
    }

    /// The routing configuration.
    pub fn tier_config(&self) -> &TierConfig {
        &self.config
    }

    /// Whether this session has statistics to route through (false means
    /// pure tier-2 passthrough).
    pub fn has_stats(&self) -> bool {
        self.stats.is_some()
    }

    /// Tries tiers 0 and 1. `Ok(None)` means "route to the model". Errors
    /// mirror the model path exactly so routing never changes which typed
    /// error a query produces.
    fn fast_path(&mut self, query: &Query) -> Result<Option<Estimate>, EstimateError> {
        let Some(stats) = &self.stats else {
            return Ok(None);
        };
        let start = Instant::now();
        // Identical validation order to `Session::estimate`: degenerate
        // domains first, then per-predicate column bounds.
        if let Some(column) = self.session.domain_sizes().iter().position(|&d| d == 0) {
            return Err(EstimateError::EmptyDomain { column });
        }
        query.try_constraints_into(self.session.num_columns(), &mut self.constraints)?;

        // Tier 0: only answers when the statistics prove the exact count.
        if let Some(card) = stats.exact_cardinality(&self.constraints) {
            let num_rows = stats.num_rows();
            let selectivity = if num_rows == 0 { 0.0 } else { card as f64 / num_rows as f64 };
            return Ok(Some(
                Estimate::closed_form(selectivity, num_rows, start.elapsed()).with_provenance(Provenance::Tier0Exact),
            ));
        }

        // Tier 1: histogram product under independence, inside the budget.
        let filtered = self.constraints.iter().filter(|c| !matches!(c, ColumnConstraint::Any)).count();
        if self.config.tier1_allows(filtered) {
            let selectivity = stats.sketch_selectivity(&self.constraints);
            return Ok(Some(
                Estimate::closed_form(selectivity, stats.num_rows(), start.elapsed())
                    .with_provenance(Provenance::Tier1Sketch),
            ));
        }
        Ok(None)
    }

    /// Estimates one query through the tiers: exact statistics, then
    /// sketches, then the model.
    pub fn estimate(&mut self, query: &Query) -> Result<Estimate, EstimateError> {
        match self.fast_path(query)? {
            Some(estimate) => Ok(estimate),
            None => self.session.estimate(query),
        }
    }

    /// Estimates one query through a *degraded* path: the normal tier-0 /
    /// tier-1 fast tiers still answer when they can (their answers are as
    /// good as the undegraded ones, so they keep their ordinary
    /// provenance), but the expensive full model walk is replaced by the
    /// rung `mode` selects. Answers produced by the cut-quality rung are
    /// tagged [`Provenance::Degraded`].
    ///
    /// Errors are identical to [`TieredSession::estimate`]: degradation
    /// never changes which typed error a malformed query produces.
    pub fn estimate_degraded(&mut self, query: &Query, mode: DegradedMode) -> Result<Estimate, EstimateError> {
        if let Some(estimate) = self.fast_path(query)? {
            return Ok(estimate);
        }
        match mode {
            DegradedMode::ReducedSamples(samples) => self
                .session
                .estimate_with_samples(query, samples.max(1))
                .map(|estimate| estimate.with_provenance(Provenance::Degraded)),
            DegradedMode::SketchOnly { fallback_samples } => match &self.stats {
                Some(stats) => {
                    // `fast_path` compiled the constraints (it only returns
                    // `Ok(None)` with stats present after compiling them),
                    // so the sketch can answer without revalidating.
                    let start = Instant::now();
                    let selectivity = stats.sketch_selectivity(&self.constraints);
                    Ok(Estimate::closed_form(selectivity, stats.num_rows(), start.elapsed())
                        .with_provenance(Provenance::Degraded))
                }
                None => self
                    .session
                    .estimate_with_samples(query, fallback_samples.max(1))
                    .map(|estimate| estimate.with_provenance(Provenance::Degraded)),
            },
        }
    }

    /// Estimates a batch, one result per query in order. Fast-path-eligible
    /// queries are answered inline; the residual is forwarded to the model
    /// session's prefix-memoizing batch path in one call.
    // lint: allow_fn(index) - partition index lists are built from enumerate over the same queries slice
    pub fn estimate_batch(&mut self, queries: &[Query]) -> Vec<Result<Estimate, EstimateError>> {
        let mut results: Vec<Option<Result<Estimate, EstimateError>>> = vec![None; queries.len()];
        let mut residual_indices = Vec::new();
        let mut residual = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            match self.fast_path(query) {
                Ok(Some(estimate)) => results[i] = Some(Ok(estimate)),
                Ok(None) => {
                    residual_indices.push(i);
                    residual.push(query.clone());
                }
                Err(err) => results[i] = Some(Err(err)),
            }
        }
        for (i, result) in residual_indices.into_iter().zip(self.session.estimate_batch(&residual)) {
            results[i] = Some(result);
        }
        // lint: allow(panic) - exact/sketch/residual partitions cover every index exactly once
        results.into_iter().map(|r| r.expect("every query is answered")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleDensity;
    use crate::Engine;
    use naru_data::synthetic::{correlated_pair, dmv_like};
    use naru_query::Predicate;

    fn tiered_engine(rows: usize, seed: u64) -> (Engine, naru_data::Table) {
        let table = dmv_like(rows, seed);
        let stats = TableStats::build(&table);
        let engine =
            Engine::new(OracleDensity::new(&table), table.num_rows() as u64).with_samples(200).with_table_stats(stats);
        (engine, table)
    }

    #[test]
    fn tier0_answers_trivial_queries_exactly() {
        let (engine, table) = tiered_engine(2000, 3);
        let mut tiered = engine.tiered_session();
        let n = table.num_columns();

        let all = tiered.estimate(&Query::all()).unwrap();
        assert_eq!(all.provenance, Provenance::Tier0Exact);
        assert_eq!(all.cardinality(), 2000);

        let single = Query::new(vec![Predicate::le(6, 900)]);
        let est = tiered.estimate(&single).unwrap();
        assert_eq!(est.provenance, Provenance::Tier0Exact);
        assert_eq!(est.cardinality(), naru_query::try_count_matches(&table, &single).unwrap());

        let empty = Query::new(vec![Predicate::between(0, 5, 2), Predicate::eq(1, 0)]);
        let est = tiered.estimate(&empty).unwrap();
        assert_eq!(est.provenance, Provenance::Tier0Exact);
        assert_eq!(est.selectivity, 0.0);
        let _ = n;
    }

    #[test]
    fn tier1_takes_two_column_queries_within_budget() {
        let (engine, _) = tiered_engine(2000, 5);
        let mut tiered = engine.tiered_session();
        // Two filtered columns: not exactly answerable, inside the default
        // budget (2^2 <= 4), so tier 1 takes it.
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 1200)]);
        let est = tiered.estimate(&q).unwrap();
        assert_eq!(est.provenance, Provenance::Tier1Sketch);
        assert!(est.live_paths.is_none());

        // Three filtered columns exceed the budget: the model answers.
        let q3 = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 1200), Predicate::ge(7, 1)]);
        let est = tiered.estimate(&q3).unwrap();
        assert_eq!(est.provenance, Provenance::Tier2Model);
        assert!(est.live_paths.is_some());
    }

    #[test]
    fn stats_less_engine_is_a_pure_passthrough() {
        let table = correlated_pair(1000, 8, 0.9, 7);
        let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64).with_samples(150);
        let queries = vec![
            Query::all(),
            Query::new(vec![Predicate::le(0, 3)]),
            Query::new(vec![Predicate::eq(0, 1), Predicate::ge(1, 2)]),
        ];
        let mut tiered = engine.tiered_session();
        let mut plain = engine.session();
        for q in &queries {
            let t = tiered.estimate(q).unwrap();
            let p = plain.estimate(q).unwrap();
            assert_eq!(t.selectivity, p.selectivity);
            assert_eq!(t.live_paths, p.live_paths);
            assert_eq!(t.provenance, Provenance::Tier2Model);
        }
        assert!(!tiered.has_stats());
    }

    #[test]
    fn tiered_errors_match_the_model_path() {
        let (engine, table) = tiered_engine(500, 11);
        let mut tiered = engine.tiered_session();
        let n = table.num_columns();
        let bad = Query::new(vec![Predicate::eq(n + 2, 0)]);
        assert_eq!(tiered.estimate(&bad), Err(EstimateError::ColumnOutOfRange { column: n + 2, num_columns: n }));
        // Batch: the error is per-query, neighbours still answered.
        let batch = tiered.estimate_batch(&[Query::all(), bad.clone()]);
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(EstimateError::ColumnOutOfRange { column: n + 2, num_columns: n }));
    }

    #[test]
    fn batch_routes_like_sequential() {
        let (engine, table) = tiered_engine(1500, 13);
        let n = table.num_columns();
        let queries = vec![
            Query::all(),
            Query::new(vec![Predicate::eq(0, 1)]),
            Query::new(vec![Predicate::eq(1, 1), Predicate::le(6, 900), Predicate::ge(7, 1), Predicate::eq(3, 0)]),
            Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 1200)]),
        ];
        let batch = engine.tiered_session().estimate_batch(&queries);
        let mut sequential = engine.tiered_session();
        for (q, b) in queries.iter().zip(&batch) {
            let s = sequential.estimate(q).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(s.selectivity, b.selectivity);
            assert_eq!(s.provenance, b.provenance);
        }
        let _ = n;
    }

    #[test]
    fn degraded_reduced_samples_tags_and_shrinks_the_walk() {
        let (engine, _) = tiered_engine(1500, 19);
        let mut tiered = engine.tiered_session();
        // Three filtered columns: neither fast tier answers.
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 1200), Predicate::ge(7, 1)]);
        let full = tiered.estimate(&q).unwrap();
        assert_eq!(full.provenance, Provenance::Tier2Model);

        let degraded = tiered.estimate_degraded(&q, DegradedMode::ReducedSamples(25)).unwrap();
        assert_eq!(degraded.provenance, Provenance::Degraded);
        assert!(degraded.live_paths.unwrap() <= 25);
        // A reduced walk is bit-identical to an explicit reduced-sample call.
        let reference = engine.session().estimate_with_samples(&q, 25).unwrap();
        assert_eq!(degraded.selectivity, reference.selectivity);
    }

    #[test]
    fn degraded_sketch_only_forces_the_sketch_past_the_budget_gate() {
        let (engine, _) = tiered_engine(1500, 23);
        let mut tiered = engine.tiered_session();
        // Three filtered columns exceed the tier-1 budget, so the normal
        // path runs the model — the degraded sketch rung answers anyway.
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 1200), Predicate::ge(7, 1)]);
        let degraded = tiered.estimate_degraded(&q, DegradedMode::SketchOnly { fallback_samples: 8 }).unwrap();
        assert_eq!(degraded.provenance, Provenance::Degraded);
        assert!(degraded.live_paths.is_none(), "a sketch answer runs no sample paths");
        assert!((0.0..=1.0).contains(&degraded.selectivity));
    }

    #[test]
    fn degraded_keeps_fast_tier_answers_undegraded() {
        let (engine, table) = tiered_engine(1000, 29);
        let mut tiered = engine.tiered_session();
        // Tier 0 proves this single-column query: degradation must not
        // touch it (the answer is already exact).
        let q = Query::new(vec![Predicate::le(6, 900)]);
        let est = tiered.estimate_degraded(&q, DegradedMode::ReducedSamples(10)).unwrap();
        assert_eq!(est.provenance, Provenance::Tier0Exact);
        assert_eq!(est.cardinality(), naru_query::try_count_matches(&table, &q).unwrap());
    }

    #[test]
    fn degraded_sketch_only_falls_back_to_a_reduced_walk_without_stats() {
        let table = correlated_pair(800, 8, 0.9, 31);
        let engine = Engine::new(OracleDensity::new(&table), table.num_rows() as u64).with_samples(150);
        let mut tiered = engine.tiered_session();
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::ge(1, 2)]);
        let est = tiered.estimate_degraded(&q, DegradedMode::SketchOnly { fallback_samples: 16 }).unwrap();
        assert_eq!(est.provenance, Provenance::Degraded);
        assert!(est.live_paths.unwrap() <= 16, "stats-less sketch rung degrades to a reduced walk");
    }

    #[test]
    fn degraded_errors_match_the_model_path() {
        let (engine, table) = tiered_engine(500, 37);
        let mut tiered = engine.tiered_session();
        let n = table.num_columns();
        let bad = Query::new(vec![Predicate::eq(n + 1, 0)]);
        for mode in [DegradedMode::ReducedSamples(10), DegradedMode::SketchOnly { fallback_samples: 10 }] {
            assert_eq!(
                tiered.estimate_degraded(&bad, mode),
                Err(EstimateError::ColumnOutOfRange { column: n + 1, num_columns: n })
            );
        }
    }

    #[test]
    fn tier1_can_be_disabled() {
        let (engine, _) = tiered_engine(1000, 17);
        let engine = engine.with_tier_config(TierConfig { tier1_qerror_budget: 0.0, tier1_column_factor: 2.0 });
        let mut tiered = engine.tiered_session();
        let q = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 1200)]);
        let est = tiered.estimate(&q).unwrap();
        assert_eq!(est.provenance, Provenance::Tier2Model);
        assert!(!engine.tier_config().tier1_allows(1));
    }
}
