//! Reusable forward-pass activation buffers.
//!
//! Inference hot paths (progressive sampling runs one network forward pass
//! per column step, thousands of times per query batch) must not allocate
//! per pass. A [`Workspace`] owns a small pool of [`Matrix`] buffers that
//! layers write into via the `_into` methods ([`crate::linear::Linear::forward_into`],
//! [`crate::embedding::Embedding::decode_logits_into`]); buffers are resized
//! in place, so after the first pass at a given batch size the whole trunk
//! runs allocation-free.

use naru_tensor::Matrix;

/// A pool of indexed scratch matrices for repeated forward passes.
///
/// Buffers are created on first use and retain their allocation across
/// passes. Callers address buffers by index and ping-pong between two of
/// them when walking a layer stack (the input of layer `i + 1` is the
/// output of layer `i`).
#[derive(Debug, Default)]
pub struct Workspace {
    bufs: Vec<Matrix>,
}

impl Workspace {
    /// Creates an empty workspace; buffers materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers materialized so far.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether no buffer has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Mutable access to buffer `idx`, growing the pool as needed.
    pub fn buf_mut(&mut self, idx: usize) -> &mut Matrix {
        self.ensure(idx);
        &mut self.bufs[idx]
    }

    /// Immutable access to buffer `idx`, growing the pool as needed.
    pub fn buf(&mut self, idx: usize) -> &Matrix {
        self.ensure(idx);
        &self.bufs[idx]
    }

    /// Simultaneous `(read, write)` access to two distinct buffers — the
    /// ping-pong pattern of a layer stack (`forward_into(ws.pair_mut(a, b))`).
    ///
    /// # Panics
    /// Panics if `read == write`.
    pub fn pair_mut(&mut self, read: usize, write: usize) -> (&Matrix, &mut Matrix) {
        assert_ne!(read, write, "pair_mut needs two distinct buffers");
        self.ensure(read.max(write));
        if read < write {
            let (lo, hi) = self.bufs.split_at_mut(write);
            (&lo[read], &mut hi[0])
        } else {
            let (lo, hi) = self.bufs.split_at_mut(read);
            (&hi[0], &mut lo[write])
        }
    }

    fn ensure(&mut self, idx: usize) {
        while self.bufs.len() <= idx {
            self.bufs.push(Matrix::zeros(0, 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_materialize_on_demand_and_persist() {
        let mut ws = Workspace::new();
        assert!(ws.is_empty());
        ws.buf_mut(2).resize(3, 4);
        assert_eq!(ws.len(), 3);
        assert_eq!(ws.buf(2).shape(), (3, 4));
        // Resizing smaller keeps the allocation; shape reflects the request.
        ws.buf_mut(2).resize(1, 2);
        assert_eq!(ws.buf(2).shape(), (1, 2));
    }

    #[test]
    fn pair_mut_returns_disjoint_buffers() {
        let mut ws = Workspace::new();
        ws.buf_mut(0).resize(2, 2);
        ws.buf_mut(0).fill(7.0);
        {
            let (read, write) = ws.pair_mut(0, 1);
            write.resize(read.rows(), read.cols());
            write.data_mut().copy_from_slice(read.data());
        }
        assert_eq!(ws.buf(1).data(), &[7.0, 7.0, 7.0, 7.0]);
        let (read, write) = ws.pair_mut(1, 0);
        assert_eq!(read.data(), &[7.0; 4]);
        write.fill_zero();
    }

    #[test]
    #[should_panic(expected = "two distinct buffers")]
    fn pair_mut_rejects_aliasing() {
        let mut ws = Workspace::new();
        let _ = ws.pair_mut(1, 1);
    }
}
