//! Optimizers.
//!
//! Each trainable tensor owns an [`Adam`] state; the layer structs in this
//! crate call [`Adam::step`] on their own parameters. This avoids the
//! borrow gymnastics of a global parameter registry while keeping the
//! update rule in a single place.

/// Hyper-parameters of the Adam optimizer. The defaults match the paper's
/// training setup (Adam with the standard β values).
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay rate for the first-moment estimate.
    pub beta1: f32,
    /// Exponential decay rate for the second-moment estimate.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// L2 weight decay applied to the gradient (0 disables it).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 2e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Adam state for one parameter tensor (flattened).
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates zeroed optimizer state for `n` parameters.
    pub fn new(n: usize) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to `params` given `grads`.
    ///
    /// # Panics
    /// Panics if `params`, `grads` and the internal state disagree in length.
    pub fn step(&mut self, cfg: &AdamConfig, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        assert_eq!(params.len(), self.m.len(), "optimizer state length mismatch");
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - cfg.beta1.powf(t);
        let bias2 = 1.0 - cfg.beta2.powf(t);
        for i in 0..params.len() {
            let mut g = grads[i];
            if cfg.weight_decay > 0.0 {
                g += cfg.weight_decay * params[i];
            }
            self.m[i] = cfg.beta1 * self.m[i] + (1.0 - cfg.beta1) * g;
            self.v[i] = cfg.beta2 * self.v[i] + (1.0 - cfg.beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            params[i] -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
        }
    }

    /// Memory used by the optimizer state in bytes (excluded from the model
    /// storage budget, as the paper reports model size only).
    pub fn size_bytes(&self) -> usize {
        (self.m.len() + self.v.len()) * std::mem::size_of::<f32>()
    }
}

/// Plain SGD update, used in tests as a reference and available for
/// fine-tuning experiments.
pub fn sgd_step(lr: f32, params: &mut [f32], grads: &[f32]) {
    assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
    for (p, g) in params.iter_mut().zip(grads.iter()) {
        *p -= lr * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)^2 should converge to 3 with Adam.
    #[test]
    fn adam_minimizes_quadratic() {
        let cfg = AdamConfig { lr: 0.1, ..Default::default() };
        let mut adam = Adam::new(1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&cfg, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut x = [10.0f32];
        for _ in 0..200 {
            let g = [2.0 * (x[0] - 3.0)];
            sgd_step(0.1, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let cfg = AdamConfig { lr: 0.01, weight_decay: 1.0, ..Default::default() };
        let mut adam = Adam::new(1);
        let mut x = [5.0f32];
        for _ in 0..2000 {
            // Zero task gradient: only decay acts.
            adam.step(&cfg, &mut x, &[0.0]);
        }
        assert!(x[0].abs() < 0.5, "x = {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut adam = Adam::new(2);
        adam.step(&AdamConfig::default(), &mut [0.0, 0.0], &[0.0]);
    }
}
