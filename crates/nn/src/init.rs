//! Weight initialization.

use naru_tensor::{Matrix, NormalSampler};
use rand::Rng;

/// Kaiming/He-style normal initialization for a weight matrix of shape
/// `out_dim x in_dim`, appropriate for ReLU networks.
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, out_dim: usize, in_dim: usize) -> Matrix {
    let std = (2.0 / in_dim.max(1) as f64).sqrt();
    let mut sampler = NormalSampler::new();
    Matrix::from_fn(out_dim, in_dim, |_, _| sampler.sample_scaled(rng, 0.0, std) as f32)
}

/// Xavier/Glorot uniform initialization for a weight matrix of shape
/// `out_dim x in_dim`, appropriate for linear output heads.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, out_dim: usize, in_dim: usize) -> Matrix {
    let bound = (6.0 / (in_dim + out_dim).max(1) as f64).sqrt() as f32;
    Matrix::from_fn(out_dim, in_dim, |_, _| rng.gen_range(-bound..bound))
}

/// Small-scale normal initialization used for embedding tables.
pub fn embedding_normal<R: Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Matrix {
    let mut sampler = NormalSampler::new();
    Matrix::from_fn(vocab, dim, |_, _| sampler.sample_scaled(rng, 0.0, 0.1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = he_normal(&mut rng, 256, 64);
        let n = w.len() as f64;
        let mean = w.data().iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = w.data().iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.01);
        assert!((var - 2.0 / 64.0).abs() < 0.01);
    }

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier_uniform(&mut rng, 32, 96);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        assert!(w.max_abs() > bound * 0.5, "should use most of the range");
    }

    #[test]
    fn embedding_normal_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = embedding_normal(&mut rng, 100, 16);
        assert_eq!(e.shape(), (100, 16));
        assert!(e.max_abs() < 1.0);
    }
}
