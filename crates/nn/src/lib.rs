//! # naru-nn
//!
//! A minimal neural-network library with manual back-propagation, written
//! for the Naru reproduction. It provides exactly the pieces a deep
//! autoregressive density estimator over relational data needs:
//!
//! * [`linear::Linear`] — dense layers, optionally with a binary
//!   connectivity mask (the MADE mechanism that enforces
//!   autoregressiveness),
//! * [`embedding::Embedding`] — learned per-column embedding tables used
//!   for large-domain input encoding and for the "embedding reuse" output
//!   decoding described in §4.2 of the paper,
//! * [`made`] — construction of MADE connectivity masks over *grouped*
//!   inputs/outputs (one group per table column),
//! * [`loss`] — per-column softmax cross-entropy (the maximum-likelihood
//!   objective of Eq. 2) and MSE (used by the supervised MSCN baseline),
//! * [`optimizer::Adam`] — the Adam optimizer,
//! * [`mlp::Mlp`] — a small plain feed-forward network used by the MSCN
//!   baseline.
//!
//! No external ML framework is used; gradients are derived by hand and
//! validated against finite differences in the test suite.

#![forbid(unsafe_code)]

pub mod activation;
pub mod embedding;
pub mod init;
pub mod linear;
pub mod loss;
pub mod made;
pub mod mlp;
pub mod optimizer;
pub mod quant;
pub mod workspace;

pub use activation::Relu;
pub use embedding::Embedding;
pub use linear::Linear;
pub use made::{build_made_masks, GroupSpec};
pub use mlp::Mlp;
pub use optimizer::{Adam, AdamConfig};
pub use quant::{QuantDecoder, QuantLinear};
pub use workspace::Workspace;

/// Number of bytes used by `n` `f32` parameters; used for the storage-budget
/// accounting that the paper applies to every estimator (Table 1).
pub fn params_size_bytes(n: usize) -> usize {
    n * std::mem::size_of::<f32>()
}
