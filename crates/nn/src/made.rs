//! MADE connectivity-mask construction over grouped inputs and outputs.
//!
//! MADE (Germain et al., 2015) turns a plain multi-layer perceptron into an
//! autoregressive model by masking its weight matrices so that the output
//! units for column `i` depend only on the input units of columns `< i`.
//!
//! Relational tables require a *grouped* variant: each column contributes a
//! block of input units (its one-hot / binary / embedding encoding) and a
//! block of output units (the logits over its domain). All units in column
//! `i`'s input block receive degree `i + 1`; all units in its output block
//! receive degree `i + 1` as well; hidden-unit degrees are assigned
//! cyclically over `1..=n-1` (the deterministic scheme used by the original
//! Naru implementation), and connections are allowed when
//!
//! * input → hidden / hidden → hidden: `degree(out) >= degree(in)`
//! * hidden → output: `degree(out) > degree(in)`
//!
//! so the first column's output block ends up connected to nothing (its
//! distribution is unconditional), exactly as required.

use naru_tensor::Matrix;

/// How many units each column occupies at the input and at the output of
/// the network.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Input-encoding width per column.
    pub input_widths: Vec<usize>,
    /// Output (logit) width per column.
    pub output_widths: Vec<usize>,
}

impl GroupSpec {
    /// Creates a spec; both vectors must describe the same number of columns.
    pub fn new(input_widths: Vec<usize>, output_widths: Vec<usize>) -> Self {
        assert_eq!(input_widths.len(), output_widths.len(), "input/output group count mismatch");
        assert!(!input_widths.is_empty(), "at least one column required");
        Self { input_widths, output_widths }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.input_widths.len()
    }

    /// Total input width.
    pub fn total_input(&self) -> usize {
        self.input_widths.iter().sum()
    }

    /// Total output width.
    pub fn total_output(&self) -> usize {
        self.output_widths.iter().sum()
    }

    /// Expands per-column degrees over the input units (degree of column
    /// `i` is `i + 1`).
    fn input_degrees(&self) -> Vec<usize> {
        expand_degrees(&self.input_widths)
    }

    /// Expands per-column degrees over the output units.
    fn output_degrees(&self) -> Vec<usize> {
        expand_degrees(&self.output_widths)
    }

    /// Byte offset of each column's output block plus the total width;
    /// convenient for slicing per-column logits out of the network output.
    pub fn output_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.output_widths.len() + 1);
        let mut acc = 0;
        for &w in &self.output_widths {
            offsets.push(acc);
            acc += w;
        }
        offsets.push(acc);
        offsets
    }

    /// Byte offset of each column's input block plus the total width.
    pub fn input_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.input_widths.len() + 1);
        let mut acc = 0;
        for &w in &self.input_widths {
            offsets.push(acc);
            acc += w;
        }
        offsets.push(acc);
        offsets
    }
}

fn expand_degrees(widths: &[usize]) -> Vec<usize> {
    let mut degrees = Vec::with_capacity(widths.iter().sum());
    for (col, &w) in widths.iter().enumerate() {
        degrees.extend(std::iter::repeat_n(col + 1, w));
    }
    degrees
}

/// Assigns hidden-unit degrees cyclically over `1..=n-1` (or all `1` when
/// the table has a single column, in which case the hidden layer carries no
/// usable information and the output mask blocks everything — the single
/// column's distribution is unconditional anyway).
fn hidden_degrees(num_hidden: usize, num_columns: usize) -> Vec<usize> {
    let max_degree = num_columns.saturating_sub(1).max(1);
    (0..num_hidden).map(|i| 1 + (i % max_degree)).collect()
}

/// Builds the masks for a MADE network with the given hidden layer sizes.
///
/// Returns one mask per weight matrix, each of shape `out_dim x in_dim`
/// (matching [`crate::linear::Linear`]'s weight layout): `hidden_sizes.len()`
/// hidden masks followed by the output mask.
pub fn build_made_masks(spec: &GroupSpec, hidden_sizes: &[usize]) -> Vec<Matrix> {
    assert!(!hidden_sizes.is_empty(), "MADE requires at least one hidden layer");
    let n = spec.num_columns();
    let mut masks = Vec::with_capacity(hidden_sizes.len() + 1);
    let mut prev_degrees = spec.input_degrees();

    for &size in hidden_sizes {
        let degrees = hidden_degrees(size, n);
        // Hidden units may see inputs of degree <= their own degree — the
        // standard MADE rule, which applies uniformly to the input-to-hidden
        // and hidden-to-hidden masks (strictness lives in the output mask).
        let mask = Matrix::from_fn(size, prev_degrees.len(), |out_unit, in_unit| {
            if degrees[out_unit] >= prev_degrees[in_unit] {
                1.0
            } else {
                0.0
            }
        });
        masks.push(mask);
        prev_degrees = degrees;
    }

    let out_degrees = spec.output_degrees();
    let out_mask = Matrix::from_fn(out_degrees.len(), prev_degrees.len(), |out_unit, in_unit| {
        if out_degrees[out_unit] > prev_degrees[in_unit] {
            1.0
        } else {
            0.0
        }
    });
    masks.push(out_mask);
    masks
}

/// Checks the autoregressive property of a full mask stack by composing the
/// masks: the resulting `total_output x total_input` reachability matrix
/// must have no path from column `j`'s inputs to column `i`'s outputs for
/// any `j >= i`. Used by tests and available as a debug assertion for
/// custom architectures.
pub fn verify_autoregressive(spec: &GroupSpec, masks: &[Matrix]) -> Result<(), String> {
    if masks.is_empty() {
        return Err("no masks provided".to_string());
    }
    // Compose reachability: R = M_L * ... * M_1 (each mask is out x in).
    let mut reach = masks[0].clone();
    for mask in &masks[1..] {
        reach = naru_tensor::matmul(mask, &reach);
    }
    let in_offsets = spec.input_offsets();
    let out_offsets = spec.output_offsets();
    for out_col in 0..spec.num_columns() {
        for in_col in out_col..spec.num_columns() {
            for o in out_offsets[out_col]..out_offsets[out_col + 1] {
                for i in in_offsets[in_col]..in_offsets[in_col + 1] {
                    if reach.get(o, i) != 0.0 {
                        return Err(format!("information leak: output column {out_col} can see input column {in_col}"));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec3() -> GroupSpec {
        GroupSpec::new(vec![4, 2, 3], vec![5, 2, 7])
    }

    #[test]
    fn masks_have_expected_shapes() {
        let spec = spec3();
        let masks = build_made_masks(&spec, &[16, 8]);
        assert_eq!(masks.len(), 3);
        assert_eq!(masks[0].shape(), (16, 9));
        assert_eq!(masks[1].shape(), (8, 16));
        assert_eq!(masks[2].shape(), (14, 8));
    }

    #[test]
    fn masks_are_binary() {
        let spec = spec3();
        for mask in build_made_masks(&spec, &[16, 8]) {
            assert!(mask.data().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn autoregressive_property_holds() {
        let spec = spec3();
        let masks = build_made_masks(&spec, &[32, 16, 32]);
        verify_autoregressive(&spec, &masks).unwrap();
    }

    #[test]
    fn autoregressive_property_holds_many_columns() {
        let widths: Vec<usize> = (0..12).map(|i| 1 + i % 4).collect();
        let spec = GroupSpec::new(widths.clone(), widths);
        let masks = build_made_masks(&spec, &[64, 64]);
        verify_autoregressive(&spec, &masks).unwrap();
    }

    #[test]
    fn first_column_output_sees_nothing() {
        let spec = spec3();
        let masks = build_made_masks(&spec, &[16]);
        // Compose and check that the first 5 output rows are all zero.
        let reach = naru_tensor::matmul(&masks[1], &masks[0]);
        for o in 0..5 {
            assert!(reach.row(o).iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn later_columns_do_see_earlier_columns() {
        let spec = spec3();
        let masks = build_made_masks(&spec, &[32, 32]);
        let mut reach = masks[0].clone();
        for mask in &masks[1..] {
            reach = naru_tensor::matmul(mask, &reach);
        }
        let out_offsets = spec.output_offsets();
        let in_offsets = spec.input_offsets();
        // Column 2's outputs (last block) must be reachable from column 0's inputs.
        let mut any = false;
        for o in out_offsets[2]..out_offsets[3] {
            for i in in_offsets[0]..in_offsets[1] {
                if reach.get(o, i) != 0.0 {
                    any = true;
                }
            }
        }
        assert!(any, "autoregressive masks are over-restrictive: no connectivity at all");
    }

    #[test]
    fn verify_detects_violation() {
        let spec = GroupSpec::new(vec![1, 1], vec![1, 1]);
        // A fully connected "mask" stack clearly violates autoregressiveness.
        let bad = vec![Matrix::full(4, 2, 1.0), Matrix::full(2, 4, 1.0)];
        assert!(verify_autoregressive(&spec, &bad).is_err());
    }

    #[test]
    fn single_column_table_is_unconditional() {
        let spec = GroupSpec::new(vec![3], vec![3]);
        let masks = build_made_masks(&spec, &[8]);
        verify_autoregressive(&spec, &masks).unwrap();
        // Output must be disconnected from the (only) input column.
        let reach = naru_tensor::matmul(&masks[1], &masks[0]);
        assert!(reach.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn offsets_partition_width() {
        let spec = spec3();
        assert_eq!(spec.input_offsets(), vec![0, 4, 6, 9]);
        assert_eq!(spec.output_offsets(), vec![0, 5, 7, 14]);
        assert_eq!(spec.total_input(), 9);
        assert_eq!(spec.total_output(), 14);
    }
}
