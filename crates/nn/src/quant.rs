//! Quantized inference mirrors of [`Linear`] and [`Embedding`].
//!
//! The relaxed inference tier (see `naru-core`'s `Precision`) runs forward
//! passes against per-row i8 weight mirrors ([`naru_tensor::QuantMatrix`])
//! instead of the trained f32 matrices: 4x less weight traffic per
//! multiply, f32 accumulation throughout, and a documented bounded error
//! (see `naru_tensor::quant`). The mirrors are *inference-only* — built
//! once from a trained layer, never updated by the optimizer — and the
//! quantized forward fuses bias addition (and optionally ReLU) into the
//! output loop so the relaxed path touches each output element once.
//!
//! Because quantization is symmetric and preserves exact zeros, a masked
//! [`Linear`]'s autoregressive connectivity survives the mirror unchanged:
//! masked-out weights quantize to the code 0 and contribute exactly 0.
//!
//! # Layout: transposed codes + activation zero-skipping
//!
//! [`QuantLinear`] keeps the quantized codes in **both** orientations: the
//! row-major [`QuantMatrix`] (the canonical mirror the error bound is
//! stated against) and a transposed copy indexed by *input*. The forward
//! passes run over the transposed copy in axpy order — for each nonzero
//! activation `x_i`, accumulate `x_i * codes_column_i` into the output row,
//! then apply each output's scale (and bias/ReLU) in one final sweep:
//!
//! ```text
//! y[r] = s[r] * sum_i x_i * q[r][i] + b[r]
//! ```
//!
//! The per-row scale factors out of the sum, so this is the same quantity
//! [`naru_tensor::quant_dot`] computes (modulo f32 summation order, which
//! the documented bound's slack already absorbs) — but activations that are
//! exactly `0.0` are skipped entirely. MADE's inputs are concatenated
//! one-hot/binary encodings and its hidden activations are post-ReLU, so
//! most of the multiplies simply vanish; this is the relaxed tier's edge
//! over the dense exact kernels, which must preserve bit-identical f32
//! results and cannot reorder or skip.

use naru_tensor::{Matrix, QuantMatrix};

use crate::embedding::Embedding;
use crate::linear::Linear;

/// An i8 inference mirror of a [`Linear`] layer: quantized weights (in both
/// row-major and transposed orientation — see the module docs) plus the
/// original f32 bias.
#[derive(Debug, Clone)]
pub struct QuantLinear {
    w: QuantMatrix,
    /// Transposed codes, `wt[i * out_dim + r] == w[r][i]`: the contiguous
    /// per-input slice the zero-skipping axpy forward streams.
    wt: Vec<i8>,
    b: Vec<f32>,
}

impl QuantLinear {
    /// Builds the mirror from a trained layer (weights are captured at call
    /// time; later optimizer steps do not propagate).
    pub fn from_linear(layer: &Linear) -> Self {
        let w = QuantMatrix::quantize(layer.weights());
        let (out_dim, in_dim) = w.shape();
        let mut wt = vec![0i8; in_dim * out_dim];
        for r in 0..out_dim {
            for (i, &code) in w.row(r).iter().enumerate() {
                // lint: allow(index) - i < in_dim and r < out_dim by construction of the transposed layout
                wt[i * out_dim + r] = code;
            }
        }
        Self { w, wt, b: layer.bias().to_vec() }
    }

    /// The transposed-code slice for input `i`: one code per output unit.
    // lint: allow_fn(index) - i is bounded by in_dim at every call site; the slice spans exactly out_dim codes
    #[inline]
    fn wt_row(&self, i: usize) -> &[i8] {
        let out = self.w.rows();
        &self.wt[i * out..(i + 1) * out]
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Bytes of storage for the mirror (codes in both orientations + scales
    /// + bias).
    pub fn size_bytes(&self) -> usize {
        self.w.size_bytes() + self.wt.len() + self.b.len() * std::mem::size_of::<f32>()
    }

    /// The shared axpy body: accumulates `sum_i x_i * q[rows][i]` into
    /// `y_row` (already zeroed), skipping activations that are exactly
    /// zero, then folds in the scales and biases of `rows` (and optionally
    /// the ReLU clamp) in one final sweep.
    #[inline]
    fn axpy_forward_row(&self, x_row: &[f32], rows: &std::ops::Range<usize>, y_row: &mut [f32], relu: bool) {
        y_row.iter_mut().for_each(|v| *v = 0.0);
        for (i, &xv) in x_row.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            // lint: allow(index) - rows.end <= out_dim is asserted by every caller; wt_row(i) spans out_dim codes
            let codes = &self.wt_row(i)[rows.start..rows.end];
            for (acc, &q) in y_row.iter_mut().zip(codes.iter()) {
                *acc += xv * q as f32;
            }
        }
        // lint: allow(index) - scales and bias both hold exactly out_dim entries; rows.end <= out_dim is asserted by every caller
        let scales = &self.w.scales()[rows.start..rows.end];
        // lint: allow(index) - scales and bias both hold exactly out_dim entries; rows.end <= out_dim is asserted by every caller
        let bias = &self.b[rows.start..rows.end];
        for ((acc, &s), &b) in y_row.iter_mut().zip(scales.iter()).zip(bias.iter()) {
            let v = *acc * s + b;
            *acc = if relu { v.max(0.0) } else { v };
        }
    }

    /// Quantized forward pass: writes `x QW^T + b` into `y`, resizing it in
    /// place. Runs in transposed axpy order with activation zero-skipping
    /// (see the module docs), with the per-row scales and the bias folded
    /// into one final sweep over the output row.
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix) {
        // lint: allow(panic) - documented layer contract: input width must match in_dim, same as Linear::forward_into
        assert_eq!(x.cols(), self.in_dim(), "input width {} != layer in_dim {}", x.cols(), self.in_dim());
        // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
        y.resize(x.rows(), self.out_dim());
        for r in 0..x.rows() {
            self.axpy_forward_row(x.row(r), &(0..self.out_dim()), y.row_mut(r), false);
        }
    }

    /// Quantized forward pass with bias **and ReLU** fused into the output
    /// sweep: writes `max(x QW^T + b, 0)` into `y`. The relaxed
    /// hidden-layer step of the MADE forward pass — the activation rides
    /// the scale/bias pass instead of a separate full-matrix sweep.
    pub fn forward_relu_into(&self, x: &Matrix, y: &mut Matrix) {
        // lint: allow(panic) - documented layer contract: input width must match in_dim, same as Linear::forward_into
        assert_eq!(x.cols(), self.in_dim(), "input width {} != layer in_dim {}", x.cols(), self.in_dim());
        // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
        y.resize(x.rows(), self.out_dim());
        for r in 0..x.rows() {
            self.axpy_forward_row(x.row(r), &(0..self.out_dim()), y.row_mut(r), true);
        }
    }

    /// Quantized counterpart of [`Linear::forward_block_into`]: computes
    /// only output units `rows`, with the matching scale and bias slices
    /// applied in the same output sweep.
    pub fn forward_block_into(&self, x: &Matrix, rows: std::ops::Range<usize>, y: &mut Matrix) {
        // lint: allow(panic) - documented layer contract: input width must match in_dim, same as Linear::forward_block_into
        assert_eq!(x.cols(), self.in_dim(), "input width {} != layer in_dim {}", x.cols(), self.in_dim());
        // lint: allow(panic) - documented layer contract: the requested block must fit the layer, same as Linear::forward_block_into
        assert!(rows.end <= self.out_dim(), "output block {rows:?} exceeds out_dim {}", self.out_dim());
        // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
        y.resize(x.rows(), rows.len());
        for r in 0..x.rows() {
            self.axpy_forward_row(x.row(r), &rows, y.row_mut(r), false);
        }
    }
}

/// An i8 inference mirror of an [`Embedding`] used for "embedding reuse"
/// output decoding (the `batch x vocab` logits matmul — the widest matrix
/// product in the MADE forward pass, and the one that profits most from
/// 4x smaller weight rows).
#[derive(Debug, Clone)]
pub struct QuantDecoder {
    table: QuantMatrix,
}

impl QuantDecoder {
    /// Builds the mirror from a trained embedding table.
    pub fn from_embedding(embedding: &Embedding) -> Self {
        Self { table: QuantMatrix::quantize(embedding.table()) }
    }

    /// Vocabulary size (logit width).
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimensionality (feature width).
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Bytes of storage for the mirror.
    pub fn size_bytes(&self) -> usize {
        self.table.size_bytes()
    }

    /// Quantized counterpart of [`Embedding::decode_logits_into`]: writes
    /// the `batch x vocab` logits `F QE^T` into `out`.
    pub fn decode_logits_into(&self, features: &Matrix, out: &mut Matrix) {
        // lint: allow(panic) - documented layer contract: feature width must match dim, same as Embedding::decode_logits_into
        assert_eq!(features.cols(), self.dim(), "feature dim mismatch in decode_logits");
        naru_tensor::matmul_a_qbt_into(features, &self.table, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naru_tensor::quant_dot_error_bound;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn max_quant_bound(q: &QuantLinear, x_row: &[f32]) -> f32 {
        (0..q.out_dim()).map(|j| quant_dot_error_bound(x_row, q.w.scale(j))).fold(0.0f32, f32::max)
    }

    #[test]
    fn quant_forward_tracks_exact_within_bound() {
        let mut rng = StdRng::seed_from_u64(21);
        let layer = Linear::new(&mut rng, 24, 16);
        let q = QuantLinear::from_linear(&layer);
        assert_eq!((q.in_dim(), q.out_dim()), (24, 16));
        let x = Matrix::from_fn(5, 24, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.4 - 1.0);
        let exact = layer.forward(&x);
        let mut approx = Matrix::zeros(0, 0);
        q.forward_into(&x, &mut approx);
        assert_eq!(approx.shape(), exact.shape());
        for r in 0..x.rows() {
            let bound = max_quant_bound(&q, x.row(r)) * 1.01 + 1e-5;
            for (a, e) in approx.row(r).iter().zip(exact.row(r).iter()) {
                assert!((a - e).abs() <= bound, "row {r}: {a} vs {e} (bound {bound})");
            }
        }
    }

    #[test]
    fn fused_relu_matches_forward_then_clamp() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(&mut rng, 10, 8);
        let q = QuantLinear::from_linear(&layer);
        let x = Matrix::from_fn(4, 10, |r, c| ((r + c * 2) % 5) as f32 * 0.3 - 0.6);
        let mut plain = Matrix::zeros(0, 0);
        q.forward_into(&x, &mut plain);
        let mut fused = Matrix::full(1, 1, 9.0);
        q.forward_relu_into(&x, &mut fused);
        assert_eq!(fused.shape(), plain.shape());
        for (f, p) in fused.data().iter().zip(plain.data().iter()) {
            assert_eq!(*f, p.max(0.0));
        }
    }

    #[test]
    fn block_forward_matches_full_slice() {
        let mut rng = StdRng::seed_from_u64(8);
        let layer = Linear::new(&mut rng, 12, 10);
        let q = QuantLinear::from_linear(&layer);
        let x = Matrix::from_fn(3, 12, |r, c| ((r * 7 + c) % 9) as f32 * 0.25 - 1.0);
        let mut full = Matrix::zeros(0, 0);
        q.forward_into(&x, &mut full);
        let mut block = Matrix::zeros(0, 0);
        q.forward_block_into(&x, 4..9, &mut block);
        assert_eq!(block.shape(), (3, 5));
        for r in 0..3 {
            for (j, &v) in block.row(r).iter().enumerate() {
                assert_eq!(v, full.get(r, 4 + j));
            }
        }
    }

    #[test]
    fn masked_connectivity_survives_quantization() {
        let mut rng = StdRng::seed_from_u64(5);
        let mask = Matrix::from_fn(6, 8, |r, c| if c <= r { 1.0 } else { 0.0 });
        let layer = Linear::new_masked(&mut rng, 8, 6, mask.clone());
        let q = QuantLinear::from_linear(&layer);
        // A masked-out input must have zero influence on the quantized
        // output: flip it and compare.
        let mut x = Matrix::from_fn(1, 8, |_, c| c as f32 * 0.2 - 0.5);
        let mut base = Matrix::zeros(0, 0);
        q.forward_into(&x, &mut base);
        x.set(0, 7, 100.0); // input 7 is masked out of outputs 0..7
        let mut flipped = Matrix::zeros(0, 0);
        q.forward_into(&x, &mut flipped);
        for j in 0..6 {
            if mask.get(j, 7) == 0.0 {
                assert_eq!(base.get(0, j), flipped.get(0, j), "masked weight leaked at output {j}");
            }
        }
    }

    #[test]
    fn quant_decoder_matches_dequantized_decode() {
        let mut rng = StdRng::seed_from_u64(13);
        let emb = Embedding::new(&mut rng, 40, 6);
        let qd = QuantDecoder::from_embedding(&emb);
        assert_eq!((qd.vocab(), qd.dim()), (40, 6));
        assert!(qd.size_bytes() < emb.param_count() * std::mem::size_of::<f32>());
        let features = Matrix::from_fn(3, 6, |r, c| (r as f32 * 0.4 - c as f32) * 0.2);
        let mut logits = Matrix::zeros(0, 0);
        qd.decode_logits_into(&features, &mut logits);
        assert_eq!(logits.shape(), (3, 40));
        // Against the exact decode the error stays within the documented
        // per-row dot bound.
        let exact = emb.decode_logits(&features);
        for r in 0..3 {
            let worst = (0..40).map(|j| quant_dot_error_bound(features.row(r), qd.table.scale(j))).fold(0.0, f32::max);
            for (a, e) in logits.row(r).iter().zip(exact.row(r).iter()) {
                assert!((a - e).abs() <= worst * 1.01 + 1e-5);
            }
        }
    }
}
