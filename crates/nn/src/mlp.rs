//! A plain feed-forward network (Linear → ReLU → … → Linear).
//!
//! Used by the supervised MSCN-style baseline and by small regression tests.
//! Naru's own autoregressive models are assembled directly from
//! [`crate::linear::Linear`] layers in `naru-core` because they need masked
//! connectivity and per-column output heads.

use naru_tensor::Matrix;
use rand::Rng;

use crate::activation::Relu;
use crate::linear::Linear;
use crate::optimizer::AdamConfig;

/// A multi-layer perceptron with ReLU activations between layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    relu: Relu,
}

/// Intermediate activations retained by [`Mlp::forward_train`] so the
/// backward pass can run without recomputation.
#[derive(Debug, Clone)]
pub struct MlpTrace {
    /// `inputs[i]` is the input fed to layer `i` (post-activation of the
    /// previous layer); `inputs[0]` is the batch itself.
    inputs: Vec<Matrix>,
    /// Pre-activation outputs of each layer.
    pre_activations: Vec<Matrix>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `&[10, 64, 64, 1]`
    /// creates two hidden layers of width 64.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, widths: &[usize]) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least input and output widths");
        let layers = widths.windows(2).map(|w| Linear::new(rng, w[0], w[1])).collect();
        Self { layers, relu: Relu }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Model size in bytes (f32 parameters).
    pub fn size_bytes(&self) -> usize {
        crate::params_size_bytes(self.param_count())
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                h = self.relu.forward(&h);
            }
        }
        h
    }

    /// Forward pass that records activations for a subsequent
    /// [`Mlp::backward`].
    pub fn forward_train(&self, x: &Matrix) -> (Matrix, MlpTrace) {
        let mut trace = MlpTrace {
            inputs: Vec::with_capacity(self.layers.len()),
            pre_activations: Vec::with_capacity(self.layers.len()),
        };
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            trace.inputs.push(h.clone());
            let pre = layer.forward(&h);
            trace.pre_activations.push(pre.clone());
            h = if i != last { self.relu.forward(&pre) } else { pre };
        }
        (h, trace)
    }

    /// Backward pass given the gradient of the loss with respect to the
    /// network output. Accumulates parameter gradients.
    pub fn backward(&mut self, trace: &MlpTrace, grad_out: &Matrix) {
        let mut grad = grad_out.clone();
        let last = self.layers.len() - 1;
        for i in (0..self.layers.len()).rev() {
            if i != last {
                grad = self.relu.backward(&trace.pre_activations[i], &grad);
            }
            grad = self.layers[i].backward(&trace.inputs[i], &grad);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    /// Applies one Adam step to every layer.
    pub fn adam_step(&mut self, cfg: &AdamConfig) {
        self.layers.iter_mut().for_each(|l| l.adam_step(cfg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, &[5, 16, 8, 2]);
        let x = Matrix::zeros(7, 5);
        assert_eq!(mlp.forward(&x).shape(), (7, 2));
        assert_eq!(mlp.param_count(), 5 * 16 + 16 + 16 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn learns_xor_like_function() {
        // Fit y = x0 XOR x1 on binary inputs: requires a hidden layer, so it
        // exercises the full backprop path.
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&mut rng, &[2, 16, 1]);
        let cfg = AdamConfig { lr: 1e-2, ..Default::default() };
        let xs = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let ys = [0.0f32, 1.0, 1.0, 0.0];
        let mut final_loss = f64::MAX;
        for _ in 0..2000 {
            let (out, trace) = mlp.forward_train(&xs);
            let preds: Vec<f32> = (0..4).map(|r| out.get(r, 0)).collect();
            let (loss, grad) = mse(&preds, &ys);
            final_loss = loss;
            let grad_m = Matrix::from_vec(4, 1, grad);
            mlp.zero_grad();
            mlp.backward(&trace, &grad_m);
            mlp.adam_step(&cfg);
        }
        assert!(final_loss < 0.01, "failed to fit XOR, loss {final_loss}");
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut rng, &[4, 8, 3]);
        let x = Matrix::from_fn(5, 4, |r, c| (r as f32 * 0.3 - c as f32 * 0.2).sin());
        let a = mlp.forward(&x);
        let (b, _) = mlp.forward_train(&x);
        assert_eq!(a, b);
    }
}
