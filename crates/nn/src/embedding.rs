//! Learned embedding tables.
//!
//! Embeddings play two roles in Naru (§4.2 of the paper):
//!
//! * **input encoding** for large-domain columns: the dictionary-encoded
//!   value id indexes a row of a `|A_i| x h` table;
//! * **output decoding via "embedding reuse"**: instead of a full
//!   `FC(F, |A_i|)` output head, the network produces an `h`-dimensional
//!   feature that is multiplied with the same (or a dedicated) embedding
//!   matrix to obtain `|A_i|` logits. [`Embedding::decode_logits`] and
//!   [`Embedding::backward_decode`] implement that path.

use naru_tensor::{matmul, matmul_a_bt, matmul_at_b, Matrix};
use rand::Rng;

use crate::init::embedding_normal;
use crate::optimizer::{Adam, AdamConfig};

/// A `vocab x dim` table of learned vectors.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Matrix,
    grad: Matrix,
    adam: Adam,
}

impl Embedding {
    /// Creates a table for `vocab` ids with `dim`-dimensional vectors.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Self {
        Self { table: embedding_normal(rng, vocab, dim), grad: Matrix::zeros(vocab, dim), adam: Adam::new(vocab * dim) }
    }

    /// Number of ids in the vocabulary.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.table.len()
    }

    /// The raw table (rows are id vectors).
    pub fn table(&self) -> &Matrix {
        &self.table
    }

    /// Looks up a batch of ids, producing a `batch x dim` matrix.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn forward(&self, ids: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.dim());
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab(), "embedding id {} out of range (vocab {})", id, self.vocab());
            out.row_mut(r).copy_from_slice(self.table.row(id));
        }
        out
    }

    /// Accumulates gradients for a lookup: `grad[id] += grad_out[row]`.
    pub fn backward(&mut self, ids: &[usize], grad_out: &Matrix) {
        assert_eq!(grad_out.rows(), ids.len(), "batch size mismatch in embedding backward");
        assert_eq!(grad_out.cols(), self.dim(), "dim mismatch in embedding backward");
        for (r, &id) in ids.iter().enumerate() {
            let g = grad_out.row(r);
            let dst = self.grad.row_mut(id);
            for (d, &v) in dst.iter_mut().zip(g.iter()) {
                *d += v;
            }
        }
    }

    /// "Embedding reuse" decoding: turns a `batch x dim` feature matrix into
    /// `batch x vocab` logits by multiplying with the table transpose
    /// (`H E^T`, §4.2 of the paper).
    pub fn decode_logits(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.cols(), self.dim(), "feature dim mismatch in decode_logits");
        matmul_a_bt(features, &self.table)
    }

    /// Buffer-reusing variant of [`Embedding::decode_logits`]: writes the
    /// `batch x vocab` logits into `out`, resizing it in place.
    pub fn decode_logits_into(&self, features: &Matrix, out: &mut Matrix) {
        assert_eq!(features.cols(), self.dim(), "feature dim mismatch in decode_logits");
        naru_tensor::matmul_a_bt_into(features, &self.table, out);
    }

    /// Back-propagates through [`Embedding::decode_logits`].
    ///
    /// Accumulates the table gradient and returns the gradient with respect
    /// to the feature matrix.
    pub fn backward_decode(&mut self, features: &Matrix, grad_logits: &Matrix) -> Matrix {
        assert_eq!(grad_logits.cols(), self.vocab(), "logit width mismatch");
        assert_eq!(grad_logits.rows(), features.rows(), "batch size mismatch");
        // logits = F E^T  =>  dE = dLogits^T F ; dF = dLogits E
        let d_table = matmul_at_b(grad_logits, features);
        self.grad.add_assign(&d_table);
        matmul(grad_logits, &self.table)
    }

    /// Buffer-reusing variant of [`Embedding::backward_decode`]: writes the
    /// feature gradient into `d_features` and uses `d_table_scratch` for the
    /// table gradient, so the training loop stays allocation-free.
    pub fn backward_decode_into(
        &mut self,
        features: &Matrix,
        grad_logits: &Matrix,
        d_features: &mut Matrix,
        d_table_scratch: &mut Matrix,
    ) {
        assert_eq!(grad_logits.cols(), self.vocab(), "logit width mismatch");
        assert_eq!(grad_logits.rows(), features.rows(), "batch size mismatch");
        naru_tensor::matmul_at_b_into(grad_logits, features, d_table_scratch);
        self.grad.add_assign(d_table_scratch);
        naru_tensor::matmul_into(grad_logits, &self.table, d_features);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Applies one Adam step.
    pub fn adam_step(&mut self, cfg: &AdamConfig) {
        self.adam.step(cfg, self.table.data_mut(), self.grad.data());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_returns_table_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::new(&mut rng, 10, 4);
        let out = emb.forward(&[3, 3, 7]);
        assert_eq!(out.shape(), (3, 4));
        assert_eq!(out.row(0), emb.table().row(3));
        assert_eq!(out.row(1), emb.table().row(3));
        assert_eq!(out.row(2), emb.table().row(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let emb = Embedding::new(&mut rng, 4, 2);
        let _ = emb.forward(&[4]);
    }

    #[test]
    fn backward_accumulates_per_id() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut emb = Embedding::new(&mut rng, 5, 2);
        emb.zero_grad();
        let grad_out = Matrix::from_vec(3, 2, vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0]);
        emb.backward(&[1, 1, 4], &grad_out);
        assert_eq!(emb.grad.row(1), &[11.0, 22.0]);
        assert_eq!(emb.grad.row(4), &[100.0, 200.0]);
        assert_eq!(emb.grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn backward_decode_into_matches_allocating_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = Embedding::new(&mut rng, 6, 3);
        let mut b = a.clone();
        let features = Matrix::from_fn(4, 3, |r, c| (r as f32 * 0.4 - c as f32) * 0.2);
        let grad_logits = Matrix::from_fn(4, 6, |r, c| ((r + c) % 4) as f32 * 0.1 - 0.15);
        let d_ref = a.backward_decode(&features, &grad_logits);
        let mut d_features = Matrix::zeros(0, 0);
        let mut d_table = Matrix::full(2, 2, 3.0);
        b.backward_decode_into(&features, &grad_logits, &mut d_features, &mut d_table);
        assert_eq!(d_features.data(), d_ref.data());
        assert_eq!(a.grad.data(), b.grad.data());
    }

    #[test]
    fn decode_logits_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut emb = Embedding::new(&mut rng, 6, 3);
        let features = Matrix::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.3);
        // Loss = sum(logits^2)/2, so dLogits = logits.
        let logits = emb.decode_logits(&features);
        emb.zero_grad();
        let d_features = emb.backward_decode(&features, &logits);

        let loss = |emb: &Embedding, f: &Matrix| -> f64 {
            emb.decode_logits(f).data().iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / 2.0
        };
        let eps = 1e-3f32;
        // Feature gradient check.
        for idx in 0..features.len() {
            let mut fp = features.clone();
            fp.data_mut()[idx] += eps;
            let mut fm = features.clone();
            fm.data_mut()[idx] -= eps;
            let num = (loss(&emb, &fp) - loss(&emb, &fm)) / (2.0 * eps as f64);
            let ana = d_features.data()[idx] as f64;
            assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()));
        }
        // Table gradient check on a few entries.
        for idx in [0usize, 5, 11, 17] {
            let orig = emb.table.data()[idx];
            emb.table.data_mut()[idx] = orig + eps;
            let lp = loss(&emb, &features);
            emb.table.data_mut()[idx] = orig - eps;
            let lm = loss(&emb, &features);
            emb.table.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = emb.grad.data()[idx] as f64;
            assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn adam_step_changes_only_touched_rows_significantly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut emb = Embedding::new(&mut rng, 5, 2);
        let before = emb.table().clone();
        emb.zero_grad();
        let grad_out = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        emb.backward(&[2], &grad_out);
        emb.adam_step(&AdamConfig::default());
        for id in 0..5 {
            let changed = emb.table().row(id) != before.row(id);
            assert_eq!(changed, id == 2, "row {id}");
        }
    }
}
