//! Activation functions.

use naru_tensor::Matrix;

/// Rectified linear unit with the state needed for back-propagation.
///
/// The layer is stateless across batches; `forward` returns both the
/// activation and nothing else because the backward pass recomputes the
/// gating from the pre-activation input that callers retain anyway.
#[derive(Debug, Default, Clone, Copy)]
pub struct Relu;

impl Relu {
    /// Applies ReLU element-wise, returning a new matrix.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        x.map(|v| if v > 0.0 { v } else { 0.0 })
    }

    /// Applies ReLU element-wise in place — the allocation-free variant used
    /// by the inference workspaces (no trace is needed when not training).
    pub fn forward_inplace(&self, x: &mut Matrix) {
        x.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
    }

    /// Back-propagates through ReLU: `dx = dy * 1[x > 0]`.
    ///
    /// `pre_activation` must be the input that was passed to `forward`.
    pub fn backward(&self, pre_activation: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut dx = grad_out.clone();
        self.backward_inplace(pre_activation, &mut dx);
        dx
    }

    /// In-place variant of [`Relu::backward`]: zeroes the entries of `grad`
    /// whose pre-activation was non-positive. Allocation-free.
    pub fn backward_inplace(&self, pre_activation: &Matrix, grad: &mut Matrix) {
        assert_eq!(pre_activation.shape(), grad.shape(), "shape mismatch in relu backward");
        for (d, &x) in grad.data_mut().iter_mut().zip(pre_activation.data().iter()) {
            if x <= 0.0 {
                *d = 0.0;
            }
        }
    }
}

/// Numerically stable sigmoid, used by the MSCN baseline's output head.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = Relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_gates_gradient() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.5, 2.0, 0.0]);
        let g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = Relu.backward(&x, &g);
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }
}
