//! Loss functions.
//!
//! The central loss is per-column softmax cross-entropy: Naru's training
//! objective (Eq. 2 of the paper) is the negative log-likelihood of each
//! tuple, which decomposes into one cross-entropy term per column thanks to
//! the autoregressive factorization.

use naru_tensor::{log_sum_exp, Matrix};

/// Result of a cross-entropy evaluation over one batch.
#[derive(Debug, Clone)]
pub struct CrossEntropyResult {
    /// Mean negative log-likelihood over the batch, in nats.
    pub loss: f64,
    /// Gradient of the mean loss with respect to the logits
    /// (`softmax - onehot`, scaled by `1/batch`).
    pub grad_logits: Matrix,
    /// Per-example log-probabilities `log p(target | logits)`, in nats.
    pub log_probs: Vec<f64>,
}

/// Softmax cross-entropy between `logits` (`batch x classes`) and integer
/// `targets`.
///
/// # Panics
/// Panics if the batch sizes disagree or a target is out of range.
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> CrossEntropyResult {
    assert_eq!(logits.rows(), targets.len(), "batch size mismatch in cross_entropy");
    let batch = logits.rows().max(1);
    let classes = logits.cols();
    let mut grad = Matrix::zeros(logits.rows(), classes);
    let mut total = 0.0f64;
    let mut log_probs = Vec::with_capacity(targets.len());
    let scale = 1.0 / batch as f32;
    for (r, &target) in targets.iter().enumerate() {
        assert!(target < classes, "target {} out of range ({} classes)", target, classes);
        let row = logits.row(r);
        let lse = log_sum_exp(row);
        let log_p = (row[target] - lse) as f64;
        log_probs.push(log_p);
        total -= log_p;
        let grad_row = grad.row_mut(r);
        for (g, &l) in grad_row.iter_mut().zip(row.iter()) {
            *g = (l - lse).exp() * scale;
        }
        grad_row[target] -= scale;
    }
    CrossEntropyResult { loss: total / batch as f64, grad_logits: grad, log_probs }
}

/// Buffer-reusing cross-entropy: writes the logit gradient into `grad`
/// (resized in place) and returns the mean loss in nats. The training-loop
/// counterpart of [`cross_entropy`] for callers that do not need the
/// per-example log-probabilities and want the batch loop allocation-free.
pub fn cross_entropy_grad_into(logits: &Matrix, targets: &[usize], grad: &mut Matrix) -> f64 {
    assert_eq!(logits.rows(), targets.len(), "batch size mismatch in cross_entropy");
    let batch = logits.rows().max(1);
    let classes = logits.cols();
    // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
    grad.resize(logits.rows(), classes);
    let mut total = 0.0f64;
    let scale = 1.0 / batch as f32;
    for (r, &target) in targets.iter().enumerate() {
        assert!(target < classes, "target {} out of range ({} classes)", target, classes);
        let row = logits.row(r);
        let lse = log_sum_exp(row);
        total -= (row[target] - lse) as f64;
        let grad_row = grad.row_mut(r);
        for (g, &l) in grad_row.iter_mut().zip(row.iter()) {
            *g = (l - lse).exp() * scale;
        }
        grad_row[target] -= scale;
    }
    total / batch as f64
}

/// Mean-squared-error loss used by the supervised MSCN baseline.
///
/// Returns `(loss, grad_predictions)` where the gradient is with respect to
/// the predictions and already includes the `1/batch` factor.
pub fn mse(predictions: &[f32], targets: &[f32]) -> (f64, Vec<f32>) {
    assert_eq!(predictions.len(), targets.len(), "length mismatch in mse");
    let n = predictions.len().max(1) as f64;
    let mut loss = 0.0f64;
    let mut grad = Vec::with_capacity(predictions.len());
    for (&p, &t) in predictions.iter().zip(targets.iter()) {
        let d = (p - t) as f64;
        loss += d * d;
        grad.push((2.0 * d / n) as f32);
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Matrix::zeros(2, 4);
        let res = cross_entropy(&logits, &[0, 3]);
        let expected = (4.0f64).ln();
        assert!((res.loss - expected).abs() < 1e-6);
        for &lp in &res.log_probs {
            assert!((lp + expected).abs() < 1e-6);
        }
        // Gradient rows sum to zero (softmax sums to one, one-hot sums to one).
        for r in 0..2 {
            let s: f32 = res.grad_logits.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_confident_correct_prediction_has_small_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 1, 20.0);
        let res = cross_entropy(&logits, &[1]);
        assert!(res.loss < 1e-6);
        let wrong = cross_entropy(&logits, &[2]);
        assert!(wrong.loss > 10.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let targets = [2usize, 0usize];
        let res = cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (cross_entropy(&lp, &targets).loss - cross_entropy(&lm, &targets).loss) / (2.0 * eps as f64);
            let ana = res.grad_logits.data()[idx] as f64;
            assert!((num - ana).abs() < 1e-3, "idx {idx}: {num} vs {ana}");
        }
    }

    #[test]
    fn cross_entropy_grad_into_matches_allocating_path() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let targets = [2usize, 0usize];
        let reference = cross_entropy(&logits, &targets);
        let mut grad = Matrix::full(5, 5, 7.0); // dirty, mis-shaped buffer
        let loss = cross_entropy_grad_into(&logits, &targets, &mut grad);
        assert!((loss - reference.loss).abs() < 1e-12);
        assert_eq!(grad.shape(), reference.grad_logits.shape());
        assert_eq!(grad.data(), reference.grad_logits.data());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_target() {
        let logits = Matrix::zeros(1, 2);
        let _ = cross_entropy(&logits, &[2]);
    }

    #[test]
    fn mse_basic() {
        let (loss, grad) = mse(&[1.0, 2.0], &[0.0, 4.0]);
        assert!((loss - (1.0 + 4.0) / 2.0).abs() < 1e-9);
        assert!((grad[0] - 1.0).abs() < 1e-6);
        assert!((grad[1] + 2.0).abs() < 1e-6);
    }
}
