//! Dense (optionally masked) linear layers with manual back-propagation.

use naru_tensor::{matmul, matmul_a_bt_into, matmul_at_b, Matrix};
use rand::Rng;

use crate::init::he_normal;
use crate::optimizer::{Adam, AdamConfig};

/// A fully connected layer computing `y = x (W ∘ M)^T + b`.
///
/// `W` has shape `out_dim x in_dim`. When a binary mask `M` is present the
/// layer is a *masked* linear layer: masked-out weights are held at zero so
/// information can never flow through them — this is the mechanism MADE
/// uses to make the network autoregressive. The invariant "masked weights
/// are exactly zero" is maintained by applying the mask after
/// initialization and after every optimizer step.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    mask: Option<Matrix>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    adam_w: Adam,
    adam_b: Adam,
}

impl Linear {
    /// Creates a layer with He-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let w = he_normal(rng, out_dim, in_dim);
        Self {
            grad_w: Matrix::zeros(out_dim, in_dim),
            grad_b: vec![0.0; out_dim],
            adam_w: Adam::new(out_dim * in_dim),
            adam_b: Adam::new(out_dim),
            w,
            b: vec![0.0; out_dim],
            mask: None,
        }
    }

    /// Creates a masked layer. The mask must have shape `out_dim x in_dim`
    /// and contain only 0/1 entries.
    pub fn new_masked<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize, mask: Matrix) -> Self {
        assert_eq!(mask.shape(), (out_dim, in_dim), "mask shape mismatch");
        debug_assert!(mask.data().iter().all(|&v| v == 0.0 || v == 1.0), "mask must be binary");
        let mut layer = Self::new(rng, in_dim, out_dim);
        layer.mask = Some(mask);
        layer.apply_mask();
        layer
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.rows()
    }

    /// Immutable access to the weight matrix (used by weight-tying schemes).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutable access to the weight matrix. Callers must re-establish the
    /// mask invariant themselves if they mutate masked positions.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Immutable access to the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// The connectivity mask, if any.
    pub fn mask(&self) -> Option<&Matrix> {
        self.mask.as_ref()
    }

    /// Number of trainable parameters. For masked layers only the unmasked
    /// weights are counted, matching how the paper reports model size.
    pub fn param_count(&self) -> usize {
        let weights = match &self.mask {
            Some(m) => m.data().iter().filter(|&&v| v != 0.0).count(),
            None => self.w.len(),
        };
        weights + self.b.len()
    }

    /// Zeroes masked-out weights.
    fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (w, m) in self.w.data_mut().iter_mut().zip(mask.data().iter()) {
                *w *= *m;
            }
        }
    }

    /// Forward pass: `y = x W^T + b` for a batch `x` of shape
    /// `batch x in_dim`; returns `batch x out_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y);
        y
    }

    /// Buffer-reusing forward pass: writes `x W^T + b` into `y`, resizing it
    /// in place. Allocation-free once `y`'s capacity suffices — the variant
    /// the inference workspaces use for repeated passes.
    pub fn forward_into(&self, x: &Matrix, y: &mut Matrix) {
        assert_eq!(x.cols(), self.in_dim(), "input width {} != layer in_dim {}", x.cols(), self.in_dim());
        matmul_a_bt_into(x, &self.w, y);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(self.b.iter()) {
                *v += *b;
            }
        }
    }

    /// Forward pass restricted to output units `rows` (a contiguous block of
    /// `W`'s rows): writes `x W[rows]^T + b[rows]` into `y`.
    ///
    /// Autoregressive models partition this layer's output into per-column
    /// blocks; during progressive sampling only one column's block is needed
    /// per step, so computing just that block cuts the output-layer cost by
    /// the number of columns.
    pub fn forward_block_into(&self, x: &Matrix, rows: std::ops::Range<usize>, y: &mut Matrix) {
        assert_eq!(x.cols(), self.in_dim(), "input width {} != layer in_dim {}", x.cols(), self.in_dim());
        assert!(rows.end <= self.out_dim(), "output block {rows:?} exceeds out_dim {}", self.out_dim());
        let width = rows.len();
        // lint: allow(no_alloc) - resize on a caller-retained buffer: allocates only on first use or growth, amortized to zero in the steady state
        y.resize(x.rows(), width);
        let bias = &self.b[rows.start..rows.end];
        for r in 0..x.rows() {
            let x_row = x.row(r);
            let y_row = y.row_mut(r);
            for (j, out) in y_row.iter_mut().enumerate() {
                *out = naru_tensor::dot(x_row, self.w.row(rows.start + j)) + bias[j];
            }
        }
    }

    /// Backward pass. Accumulates parameter gradients internally and
    /// returns the gradient with respect to the input.
    ///
    /// `x` must be the same batch that produced `grad_out` via
    /// [`Linear::forward`].
    pub fn backward(&mut self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.cols(), self.out_dim(), "grad width mismatch");
        assert_eq!(grad_out.rows(), x.rows(), "batch size mismatch");
        // dW = dY^T X ; dB = column sums of dY ; dX = dY W
        let mut dw = matmul_at_b(grad_out, x);
        if let Some(mask) = &self.mask {
            dw.hadamard_assign(mask);
        }
        self.grad_w.add_assign(&dw);
        for r in 0..grad_out.rows() {
            for (gb, g) in self.grad_b.iter_mut().zip(grad_out.row(r).iter()) {
                *gb += *g;
            }
        }
        matmul(grad_out, &self.w)
    }

    /// Buffer-reusing backward pass: like [`Linear::backward`], but writes
    /// the input gradient into `dx` and uses `dw_scratch` for the weight
    /// gradient, so a training loop reusing both runs this layer's backward
    /// allocation-free at steady state.
    pub fn backward_into(&mut self, x: &Matrix, grad_out: &Matrix, dx: &mut Matrix, dw_scratch: &mut Matrix) {
        assert_eq!(grad_out.cols(), self.out_dim(), "grad width mismatch");
        assert_eq!(grad_out.rows(), x.rows(), "batch size mismatch");
        naru_tensor::matmul_at_b_into(grad_out, x, dw_scratch);
        if let Some(mask) = &self.mask {
            dw_scratch.hadamard_assign(mask);
        }
        self.grad_w.add_assign(dw_scratch);
        for r in 0..grad_out.rows() {
            for (gb, g) in self.grad_b.iter_mut().zip(grad_out.row(r).iter()) {
                *gb += *g;
            }
        }
        naru_tensor::matmul_into(grad_out, &self.w, dx);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Applies one Adam step using the accumulated gradients, then
    /// re-applies the mask invariant.
    pub fn adam_step(&mut self, cfg: &AdamConfig) {
        self.adam_w.step(cfg, self.w.data_mut(), self.grad_w.data());
        self.adam_b.step(cfg, &mut self.b, &self.grad_b);
        self.apply_mask();
    }

    /// Squared L2 norm of the accumulated gradient (for debugging /
    /// gradient clipping experiments).
    pub fn grad_norm_sq(&self) -> f32 {
        self.grad_w.norm_sq() + self.grad_b.iter().map(|v| v * v).sum::<f32>()
    }

    /// Infinity-norm clip of the accumulated gradient.
    pub fn clip_grad(&mut self, max_abs: f32) {
        self.grad_w.map_inplace(|v| v.clamp(-max_abs, max_abs));
        self.grad_b.iter_mut().for_each(|v| *v = v.clamp(-max_abs, max_abs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check(masked: bool) {
        let mut rng = StdRng::seed_from_u64(42);
        let in_dim = 5;
        let out_dim = 4;
        let batch = 3;
        let mask = if masked {
            Some(Matrix::from_fn(out_dim, in_dim, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.0 }))
        } else {
            None
        };
        let mut layer = match mask.clone() {
            Some(m) => Linear::new_masked(&mut rng, in_dim, out_dim, m),
            None => Linear::new(&mut rng, in_dim, out_dim),
        };
        let x = Matrix::from_fn(batch, in_dim, |r, c| ((r * 7 + c * 3) % 5) as f32 * 0.3 - 0.5);

        // Loss = sum(y^2) / 2 so dL/dy = y.
        let y = layer.forward(&x);
        let grad_out = y.clone();
        layer.zero_grad();
        let dx = layer.backward(&x, &grad_out);

        // Check dX by finite differences.
        let loss = |layer: &Linear, x: &Matrix| -> f64 {
            let y = layer.forward(x);
            y.data().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / 2.0
        };
        let eps = 1e-3f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps as f64);
            let ana = dx.data()[idx] as f64;
            assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()), "dX[{idx}]: numeric {num} vs analytic {ana}");
        }

        // Check dW by finite differences on a few entries.
        for idx in [0usize, 3, 7, out_dim * in_dim - 1] {
            if masked {
                let m = mask.as_ref().unwrap().data()[idx];
                if m == 0.0 {
                    // Gradient for masked weights must be zero.
                    assert_eq!(layer.grad_w.data()[idx], 0.0);
                    continue;
                }
            }
            let orig = layer.w.data()[idx];
            layer.w.data_mut()[idx] = orig + eps;
            let lp = loss(&layer, &x);
            layer.w.data_mut()[idx] = orig - eps;
            let lm = loss(&layer, &x);
            layer.w.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = layer.grad_w.data()[idx] as f64;
            assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()), "dW[{idx}]: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(false);
    }

    #[test]
    fn masked_gradients_match_finite_differences() {
        finite_diff_check(true);
    }

    #[test]
    fn masked_weights_stay_zero_after_updates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mask = Matrix::from_fn(4, 6, |r, c| if c <= r { 1.0 } else { 0.0 });
        let mut layer = Linear::new_masked(&mut rng, 6, 4, mask.clone());
        let x = Matrix::from_fn(8, 6, |r, c| (r + c) as f32 * 0.1);
        for _ in 0..5 {
            let y = layer.forward(&x);
            layer.zero_grad();
            layer.backward(&x, &y);
            layer.adam_step(&AdamConfig::default());
        }
        for (w, m) in layer.weights().data().iter().zip(mask.data().iter()) {
            if *m == 0.0 {
                assert_eq!(*w, 0.0, "masked weight drifted away from zero");
            }
        }
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = Linear::new(&mut rng, 3, 2);
        layer.b = vec![1.0, -1.0];
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn forward_into_and_block_match_forward() {
        let mut rng = StdRng::seed_from_u64(21);
        let layer = Linear::new(&mut rng, 6, 10);
        let x = Matrix::from_fn(5, 6, |r, c| ((r * 5 + c * 3) % 7) as f32 * 0.4 - 1.0);
        let full = layer.forward(&x);

        // Buffer-reusing variant, starting from a mis-shaped dirty buffer.
        let mut y = Matrix::full(2, 3, 99.0);
        layer.forward_into(&x, &mut y);
        assert_eq!(y.shape(), full.shape());
        assert_eq!(y.data(), full.data());

        // Block variant must match the corresponding slice of the full output.
        let mut block = Matrix::zeros(0, 0);
        layer.forward_block_into(&x, 3..7, &mut block);
        assert_eq!(block.shape(), (5, 4));
        for r in 0..5 {
            for (j, &v) in block.row(r).iter().enumerate() {
                assert!((v - full.get(r, 3 + j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn backward_into_matches_backward() {
        let mut rng = StdRng::seed_from_u64(11);
        let mask = Matrix::from_fn(4, 6, |r, c| if (r + c) % 3 != 0 { 1.0 } else { 0.0 });
        let mut a = Linear::new_masked(&mut rng, 6, 4, mask.clone());
        let mut b = a.clone();
        let x = Matrix::from_fn(5, 6, |r, c| ((r * 3 + c) % 7) as f32 * 0.2 - 0.5);
        let grad_out = Matrix::from_fn(5, 4, |r, c| ((r + c * 2) % 5) as f32 * 0.1 - 0.2);

        let dx_ref = a.backward(&x, &grad_out);
        let mut dx = Matrix::full(1, 1, 9.0);
        let mut dw_scratch = Matrix::zeros(0, 0);
        b.backward_into(&x, &grad_out, &mut dx, &mut dw_scratch);
        assert_eq!(dx.data(), dx_ref.data());
        assert_eq!(a.grad_w.data(), b.grad_w.data());
        assert_eq!(a.grad_b, b.grad_b);
    }

    #[test]
    fn param_count_excludes_masked_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let mask = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        let layer = Linear::new_masked(&mut rng, 4, 4, mask);
        assert_eq!(layer.param_count(), 4 + 4);
        let dense = Linear::new(&mut rng, 4, 4);
        assert_eq!(dense.param_count(), 16 + 4);
    }

    #[test]
    fn training_reduces_regression_loss() {
        // Tiny regression sanity check: learn y = sum(x).
        let mut rng = StdRng::seed_from_u64(17);
        let mut layer = Linear::new(&mut rng, 4, 1);
        let cfg = AdamConfig { lr: 5e-2, ..Default::default() };
        let x = Matrix::from_fn(32, 4, |r, c| ((r * 13 + c * 7) % 11) as f32 / 11.0);
        let target: Vec<f32> = (0..32).map(|r| x.row(r).iter().sum()).collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            let y = layer.forward(&x);
            let mut grad = Matrix::zeros(32, 1);
            let mut loss = 0.0;
            for (r, &t) in target.iter().enumerate() {
                let d = y.get(r, 0) - t;
                loss += d * d;
                grad.set(r, 0, 2.0 * d / 32.0);
            }
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
            layer.zero_grad();
            layer.backward(&x, &grad);
            layer.adam_step(&cfg);
        }
        assert!(last < first.unwrap() * 0.01, "loss did not decrease: {} -> {}", first.unwrap(), last);
    }
}
