//! Property-based tests for the neural-network substrate: gradient checks
//! on random shapes, MADE mask invariants, and loss-function properties.

use naru_nn::linear::Linear;
use naru_nn::loss::{cross_entropy, mse};
use naru_nn::made::{build_made_masks, verify_autoregressive, GroupSpec};
use naru_nn::optimizer::{Adam, AdamConfig};
use naru_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MADE masks are autoregressive for arbitrary column group widths and
    /// hidden layer shapes.
    #[test]
    fn made_masks_always_autoregressive(
        widths in proptest::collection::vec(1usize..5, 1..8),
        hidden in proptest::collection::vec(4usize..48, 1..4),
    ) {
        let spec = GroupSpec::new(widths.clone(), widths.iter().map(|w| w + 1).collect());
        let masks = build_made_masks(&spec, &hidden);
        prop_assert!(verify_autoregressive(&spec, &masks).is_ok());
        // Shapes chain correctly.
        prop_assert_eq!(masks[0].cols(), spec.total_input());
        prop_assert_eq!(masks.last().unwrap().rows(), spec.total_output());
        for w in masks.windows(2) {
            prop_assert_eq!(w[1].cols(), w[0].rows());
        }
    }

    /// Linear-layer input gradients match finite differences on random
    /// shapes and inputs.
    #[test]
    fn linear_gradcheck(
        seed in 0u64..1000,
        in_dim in 1usize..6,
        out_dim in 1usize..6,
        batch in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(&mut rng, in_dim, out_dim);
        let x = Matrix::from_fn(batch, in_dim, |r, c| ((r * 7 + c * 13 + seed as usize) % 9) as f32 * 0.2 - 0.8);
        let y = layer.forward(&x);
        layer.zero_grad();
        let dx = layer.backward(&x, &y); // loss = sum(y^2)/2
        let loss = |layer: &Linear, x: &Matrix| -> f64 {
            layer.forward(x).data().iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / 2.0
        };
        let eps = 1e-2f32;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps as f64);
            prop_assert!((num - dx.data()[idx] as f64).abs() < 2e-2 * (1.0 + num.abs()));
        }
    }

    /// Cross-entropy is non-negative, and its gradient rows sum to ~0.
    #[test]
    fn cross_entropy_properties(
        logits in proptest::collection::vec(-10.0f32..10.0, 12),
        t0 in 0usize..4, t1 in 0usize..4, t2 in 0usize..4,
    ) {
        let m = Matrix::from_vec(3, 4, logits);
        let res = cross_entropy(&m, &[t0, t1, t2]);
        prop_assert!(res.loss >= -1e-6);
        prop_assert!(res.log_probs.iter().all(|&lp| lp <= 1e-6));
        for r in 0..3 {
            let s: f32 = res.grad_logits.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// MSE is zero iff predictions equal targets, and its gradient points
    /// from target toward prediction.
    #[test]
    fn mse_properties(pairs in proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), 1..20)) {
        let preds: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let targets: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let (loss, grad) = mse(&preds, &targets);
        prop_assert!(loss >= 0.0);
        for ((&p, &t), &g) in preds.iter().zip(targets.iter()).zip(grad.iter()) {
            if (p - t).abs() > 1e-3 {
                prop_assert_eq!(g > 0.0, p > t);
            }
        }
        let (self_loss, _) = mse(&preds, &preds);
        prop_assert!(self_loss.abs() < 1e-9);
    }

    /// Adam drives a random convex quadratic toward its minimum.
    ///
    /// Adam's per-step movement is bounded by roughly the learning rate, so
    /// the step budget is sized for the worst case (|start - target| can be
    /// up to 10 with the smallest lr in the range).
    #[test]
    fn adam_minimizes_random_quadratic(target in -5.0f32..5.0, start in -5.0f32..5.0, lr in 0.02f32..0.2) {
        let cfg = AdamConfig { lr, ..Default::default() };
        let mut adam = Adam::new(1);
        let mut x = [start];
        for _ in 0..2000 {
            let g = [2.0 * (x[0] - target)];
            adam.step(&cfg, &mut x, &g);
        }
        prop_assert!((x[0] - target).abs() < 0.1, "x={} target={}", x[0], target);
    }
}
