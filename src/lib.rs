//! # naru
//!
//! A Rust reproduction of **Naru** — *Deep Unsupervised Cardinality
//! Estimation* (Yang et al., VLDB 2019): selectivity estimation with deep
//! autoregressive likelihood models and progressive sampling.
//!
//! This facade crate re-exports the workspace's sub-crates so downstream
//! users can depend on a single package:
//!
//! * [`tensor`] — dense matrix kernels,
//! * [`nn`] — the neural-network substrate (masked linear layers, MADE
//!   masks, embeddings, Adam),
//! * [`data`] — columnar tables, dictionary encoding, synthetic datasets,
//! * [`query`] — predicates, workload generation, q-error metrics, the
//!   [`query::SelectivityEstimator`] trait plus the [`query::Estimate`] /
//!   [`query::EstimateError`] result types,
//! * [`baselines`] — the estimators the paper compares against,
//! * [`core`] — Naru itself: autoregressive density models, training,
//!   progressive sampling, the serving-oriented [`core::Engine`] /
//!   [`core::Session`] API, and the tiered fast paths
//!   ([`core::TableStats`] + [`core::TieredSession`]: exact stats at
//!   tier 0, histogram/sketch answers at tier 1, the model at tier 2,
//!   each estimate tagged with its [`query::Provenance`]),
//! * [`serve`] — the worker-pool serving subsystem: a priority-aware
//!   bounded request queue with per-class admission control, per-worker
//!   tiered sessions, a sharded predicate-keyed [`serve::EstimateCache`],
//!   opportunistic micro-batching with shared-prefix memoization,
//!   deadlines and cancellation ([`serve::SubmitOptions`] /
//!   [`serve::Ticket`]), deadline-pressure degradation
//!   ([`serve::DegradePolicy`]), a supervising watchdog with fault
//!   injection ([`serve::FaultInjection`]), and graceful
//!   drain-on-shutdown,
//! * [`net`] — the network front end over `std::net`: a bounded
//!   HTTP/1.1 parser with typed [`net::ProtocolError`]s, the
//!   line-oriented query/estimate wire format (query side in
//!   [`query::wire`]), a [`net::NetServer`] accept loop + handler pool
//!   mapping `X-Naru-Priority` / `X-Naru-Timeout-Ms` headers onto the
//!   request lifecycle and [`serve::ServeError`]s onto distinct HTTP
//!   statuses, client-disconnect cancellation, and graceful drain.
//!
//! ## The Engine/Session estimation API
//!
//! Estimation is split into two halves:
//!
//! * an **[`Engine`](core::Engine)** owns the immutable trained artifact
//!   (behind an `Arc`, so it is `Clone + Send + Sync` and cheap to hand to
//!   every worker thread);
//! * a **[`Session`](core::Session)** owns all mutable scratch — sampler
//!   buffers, RNG seed, per-call sample-count knob — so steady-state
//!   estimation is allocation-free and never takes a lock.
//!
//! Estimates are **fallible and rich**: you get an
//! [`Estimate`](query::Estimate) (selectivity, estimated rows, live sample
//! paths, wall time) or a typed [`EstimateError`](query::EstimateError)
//! (out-of-range column, empty domain, untrained estimator) instead of a
//! bare `f64` that silently collapses failures to `0.0`.
//!
//! ```no_run
//! use naru::prelude::*;
//!
//! // 1. Get a table (here: a small synthetic one).
//! let table = naru::data::synthetic::dmv_like(10_000, 42);
//!
//! // 2. Train a Naru estimator on it (unsupervised: it only reads tuples).
//! let config = NaruConfig::builder().epochs(4).num_samples(1000).build();
//! let (estimator, _report) = NaruEstimator::train(&table, &config);
//!
//! // 3. Single-shot estimation through the shared trait:
//! let query = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 500)]);
//! let estimate = estimator.try_estimate(&query).expect("valid query");
//! println!("selectivity {:.5} (~{} rows, {} live paths, {:?})",
//!     estimate.selectivity, estimate.cardinality(),
//!     estimate.live_paths.unwrap_or(0), estimate.wall_time);
//!
//! // 4. Serving: share one Engine, give each thread its own Session.
//! let engine = estimator.into_engine();
//! let queries = vec![query.clone(), Query::all()];
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         let engine = engine.clone();
//!         let queries = queries.clone();
//!         scope.spawn(move || {
//!             let mut session = engine.session();
//!             let results = session.estimate_batch(&queries);
//!             assert!(results.iter().all(|r| r.is_ok()));
//!         });
//!     }
//! });
//! ```
//!
//! ## Serving under load
//!
//! For a long-running service, hand the engine to a
//! [`serve::Server`]: a bounded MPMC request queue with admission control
//! ([`serve::Server::try_submit`] rejects with
//! [`serve::ServeError::Overloaded`] when full, [`serve::Server::submit`]
//! applies backpressure), a pool of workers each owning one `Session`,
//! opportunistic micro-batching into `estimate_batch`, per-request
//! [`serve::ServeStats`] (queue wait, execution time, worker id), and a
//! graceful shutdown that drains every accepted request. Requests can
//! carry a [`serve::Priority`] class and a [`serve::Deadline`]; tickets
//! can be cancelled or waited on with a timeout; and a
//! [`serve::DegradePolicy`] trades estimate quality for latency when a
//! deadline or queue-depth pressure makes the full model walk
//! unaffordable (such answers are tagged
//! [`Provenance::Degraded`](query::Provenance::Degraded)):
//!
//! ```no_run
//! use naru::prelude::*;
//! use std::time::Duration;
//!
//! # let table = naru::data::synthetic::dmv_like(1_000, 42);
//! # let (estimator, _) = NaruEstimator::train(&table, &NaruConfig::small());
//! let engine = estimator.into_engine();
//! let config = ServeConfig::default().with_workers(4).with_max_batch(8);
//! let server = Server::start(engine, config).expect("valid serve config");
//! let options = SubmitOptions::interactive().deadline_within(Duration::from_millis(50));
//! let ticket = server.try_submit_with(Query::new(vec![Predicate::eq(0, 1)]), options)?;
//! let served = ticket.wait()?;
//! println!("{:.5} selectivity, {:?} in queue, worker {}",
//!     served.estimate.selectivity, served.stats.queue_wait, served.stats.worker);
//! let metrics = server.shutdown(); // drains in-flight work, joins workers
//! assert_eq!(metrics.accounted(), metrics.accepted);
//! # Ok::<(), naru::serve::ServeError>(())
//! ```
//!
//! ## Migrating from the 0.1 single-shot API
//!
//! The bare-`f64` entry points (deprecated in 0.2) are now **removed**;
//! the fallible API is the only way to estimate, so errors can never
//! silently collapse to `0.0`:
//!
//! | Removed call | Replacement |
//! |---|---|
//! | `est.estimate(&q)` → `f64` | `est.try_estimate(&q)?` → [`Estimate`](query::Estimate) |
//! | loop over `est.estimate(..)` | `est.try_estimate_batch(&queries)` |
//! | `est.estimate_with_samples(&q, s)` | `est.try_estimate_with_samples(&q, s)?`, or a `Session` + `estimate_with_samples` |
//! | `est.set_num_samples(s)` (rebuilt sampler) | same call — now a pure knob, or `session.set_num_samples(s)` |
//! | `NaruEstimator::from_model(model, s)` | `NaruEstimator::from_model(model, s, num_rows)` |
//! | share `&NaruEstimator` across threads (lock-serialized) | `est.into_engine()`, one `engine.session()` per thread, or a [`serve::Server`] |

#![forbid(unsafe_code)]

pub use naru_baselines as baselines;
pub use naru_core as core;
pub use naru_data as data;
pub use naru_net as net;
pub use naru_nn as nn;
pub use naru_query as query;
pub use naru_serve as serve;
pub use naru_tensor as tensor;

/// Commonly used types, importable with `use naru::prelude::*`.
pub mod prelude {
    pub use naru_core::{Engine, NaruConfig, NaruEstimator, Precision, Session, TableStats, TierConfig, TieredSession};
    pub use naru_data::{Column, Table, Value};
    pub use naru_net::{NetConfig, NetServer};
    pub use naru_query::{Estimate, EstimateError, Predicate, Provenance, Query, QueryKey, SelectivityEstimator};
    pub use naru_serve::{
        ConfigError, Deadline, DegradePolicy, EstimateCache, FaultInjection, MetricsSnapshot, Priority, ServeConfig,
        ServeError, ServeStats, ServedEstimate, Server, SubmitOptions, Ticket,
    };
}
