//! # naru
//!
//! A Rust reproduction of **Naru** — *Deep Unsupervised Cardinality
//! Estimation* (Yang et al., VLDB 2019): selectivity estimation with deep
//! autoregressive likelihood models and progressive sampling.
//!
//! This facade crate re-exports the workspace's sub-crates so downstream
//! users can depend on a single package:
//!
//! * [`tensor`] — dense matrix kernels,
//! * [`nn`] — the neural-network substrate (masked linear layers, MADE
//!   masks, embeddings, Adam),
//! * [`data`] — columnar tables, dictionary encoding, synthetic datasets,
//! * [`query`] — predicates, workload generation, q-error metrics, the
//!   [`query::SelectivityEstimator`] trait,
//! * [`baselines`] — the estimators the paper compares against,
//! * [`core`] — Naru itself: autoregressive density models, training, and
//!   progressive sampling.
//!
//! ## Quickstart
//!
//! ```no_run
//! use naru::prelude::*;
//!
//! // 1. Get a table (here: a small synthetic one).
//! let table = naru::data::synthetic::dmv_like(10_000, 42);
//!
//! // 2. Train a Naru estimator on it (unsupervised: it only reads tuples).
//! let config = NaruConfig::small();
//! let (model, _report) = NaruEstimator::train(&table, &config);
//!
//! // 3. Ask for a selectivity.
//! let query = Query::new(vec![Predicate::eq(0, 1), Predicate::le(6, 500)]);
//! let estimate = model.estimate(&query);
//! println!("estimated selectivity: {estimate}");
//! ```

pub use naru_baselines as baselines;
pub use naru_core as core;
pub use naru_data as data;
pub use naru_nn as nn;
pub use naru_query as query;
pub use naru_tensor as tensor;

/// Commonly used types, importable with `use naru::prelude::*`.
pub mod prelude {
    pub use naru_core::{NaruConfig, NaruEstimator};
    pub use naru_data::{Column, Table, Value};
    pub use naru_query::{Predicate, Query, SelectivityEstimator};
}
